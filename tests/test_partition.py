"""Network partitions: each side keeps serving its own clients, and the
merge heals state everywhere (the hardest case for flooded databases)."""

from repro.analysis.scenarios import continental_scenario
from repro.core.message import Address

#: Cutting these fibers in BOTH ISPs splits the 12-city overlay into a
#: west side and an east side (every west-east edge in both footprints).
PARTITION_CUTS = [
    ("DEN", "CHI"), ("DAL", "STL"), ("DAL", "ATL"), ("DEN", "STL"),
]
WEST = ["SEA", "SFO", "LAX", "DEN", "DAL"]
EAST = ["CHI", "STL", "ATL", "MIA", "WAS", "NYC", "BOS"]


def _partition(scn):
    applied = []
    for a, b in PARTITION_CUTS:
        for isp in scn.internet.isps:
            try:
                scn.internet.fail_fiber(isp, a, b)
                applied.append((isp, a, b))
            except KeyError:
                pass  # this ISP has no such fiber
    return applied


def _heal(scn, applied):
    for isp, a, b in applied:
        scn.internet.repair_fiber(isp, a, b)


def test_partition_is_complete():
    import networkx as nx
    from repro.net.topologies import ISP_FOOTPRINTS

    for isp in ("ispA", "ispB"):
        g = nx.Graph(ISP_FOOTPRINTS[isp])
        g.remove_edges_from(PARTITION_CUTS)
        assert not nx.has_path(g, "LAX", "NYC"), isp


def test_each_side_keeps_working_during_partition():
    scn = continental_scenario(seed=4201)
    applied = _partition(scn)
    scn.run_for(3.0)  # links detected down, LSUs flooded per side
    west_got, east_got = [], []
    scn.overlay.client("site-LAX", 7, on_message=west_got.append)
    scn.overlay.client("site-NYC", 7, on_message=east_got.append)
    scn.overlay.client("site-SEA").send(Address("site-LAX", 7))
    scn.overlay.client("site-BOS").send(Address("site-NYC", 7))
    scn.run_for(1.0)
    assert len(west_got) == 1
    assert len(east_got) == 1
    # Cross-partition traffic goes nowhere.
    cross = []
    scn.overlay.client("site-MIA", 77, on_message=cross.append)
    scn.overlay.client("site-SFO").send(Address("site-MIA", 77))
    scn.run_for(2.0)
    assert cross == []


def test_merge_heals_state_and_service():
    scn = continental_scenario(seed=4202)
    # Group membership changes on both sides *during* the partition.
    applied = _partition(scn)
    scn.run_for(3.0)
    west_rx = scn.overlay.client("site-SEA", 7, on_message=lambda m: None)
    west_rx.join("mcast:merge")
    east_got = []
    east_rx = scn.overlay.client("site-BOS", 7, on_message=lambda m: east_got.append(m.seq))
    east_rx.join("mcast:merge")
    scn.run_for(2.0)
    # East does not know about west's member yet (partition).
    bos_view = scn.overlay.nodes["site-BOS"].group_db.members("mcast:merge")
    assert "site-SEA" not in bos_view
    _heal(scn, applied)
    convergence = scn.internet.isps["ispA"].convergence_delay
    scn.run_for(convergence + 5.0)
    assert scn.overlay.converged()
    # Both sides now agree on membership...
    for node in scn.overlay.nodes.values():
        assert node.group_db.members("mcast:merge") == [
            "site-BOS", "site-SEA"
        ]
    # ...and cross-country multicast reaches both members.
    west_got = []
    west_rx.node.session.clients[7].on_message = lambda m: west_got.append(m.seq)
    scn.overlay.client("site-MIA").send(Address("mcast:merge", 7))
    scn.run_for(1.0)
    assert len(east_got) >= 1
    assert len(west_got) == 1
