"""Dissemination graphs: structure and resilience properties."""

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.alg.graph import undirected
from repro.core.dissemination import (
    destination_problem_graph,
    source_problem_graph,
    src_dst_problem_graph,
    two_disjoint_paths_graph,
)

MESH = undirected(
    [
        ("s", "a", 1.0), ("s", "b", 1.0), ("s", "c", 2.0),
        ("a", "m", 1.0), ("b", "m", 1.0), ("c", "m", 2.0),
        ("m", "x", 1.0), ("m", "y", 1.0),
        ("x", "t", 1.0), ("y", "t", 1.0), ("c", "t", 4.0),
        ("a", "x", 1.5), ("b", "y", 1.5),
    ]
)


def _connects(edges, src, dst, removed=()):
    g = nx.Graph(list(edges))
    g.remove_nodes_from(removed)
    return g.has_node(src) and g.has_node(dst) and nx.has_path(g, src, dst)


def test_base_graph_contains_two_disjoint_paths():
    edges = two_disjoint_paths_graph(MESH, "s", "t")
    assert _connects(edges, "s", "t")
    g = nx.Graph(list(edges))
    assert nx.node_connectivity(g, "s", "t") >= 2


def test_base_graph_empty_when_unreachable():
    adj = {"s": {}, "t": {}}
    assert two_disjoint_paths_graph(adj, "s", "t") == set()


def test_source_problem_graph_fans_out_from_source():
    edges = source_problem_graph(MESH, "s", "t")
    source_degree = sum(1 for e in edges if "s" in e)
    assert source_degree == len(MESH["s"]), "source should use all its links"


def test_destination_problem_graph_fans_into_destination():
    edges = destination_problem_graph(MESH, "s", "t")
    dst_degree = sum(1 for e in edges if "t" in e)
    assert dst_degree == len(MESH["t"])


def test_src_dst_graph_is_superset_of_base():
    base = two_disjoint_paths_graph(MESH, "s", "t")
    full = src_dst_problem_graph(MESH, "s", "t")
    assert base <= full


def test_src_dst_graph_survives_any_single_interior_failure():
    """The targeted-redundancy claim: one failed interior node cannot
    disconnect the graph (it contains 2 node-disjoint paths)."""
    edges = src_dst_problem_graph(MESH, "s", "t")
    interior = {n for e in edges for n in e} - {"s", "t"}
    for node in interior:
        assert _connects(edges, "s", "t", removed=[node]), f"cut by {node}"


def test_src_dst_graph_cheaper_than_flooding():
    edges = src_dst_problem_graph(MESH, "s", "t")
    total_links = sum(len(v) for v in MESH.values()) // 2
    assert len(edges) < total_links


@st.composite
def random_2connected(draw):
    n = draw(st.integers(min_value=4, max_value=10))
    # Ring guarantees 2-connectivity; extras add texture.
    edges = [(i, (i + 1) % n, 1.0) for i in range(n)]
    extra = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=8,
        )
    )
    for u, v in extra:
        if u != v:
            edges.append((u, v, 1.0))
    return n, edges


@given(random_2connected())
@settings(max_examples=40, deadline=None)
def test_property_src_dst_graph_always_connects(graph):
    n, edges = graph
    adj = undirected(edges)
    result = src_dst_problem_graph(adj, 0, n // 2)
    if n // 2 == 0:
        return
    assert _connects(result, 0, n // 2)
