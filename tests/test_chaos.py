"""Chaos test: everything at once.

A 40-second run on the continental overlay with live video multicast,
reliable control flows, and VoIP, while the environment throws fiber
cuts, a node crash + recovery, a provider-wide loss storm, and repairs.
Asserts the system-level invariants that must hold through arbitrary
chaos: the simulator stays consistent, ordered flows never reorder or
duplicate, every service recovers after the final repair, and the
shared state reconverges.
"""

from repro.analysis.scenarios import continental_scenario
from repro.analysis.workloads import CbrSource
from repro.apps.video import VideoReceiver, VideoSource
from repro.core.message import Address, LINK_RELIABLE, ServiceSpec
from repro.net.loss import BernoulliLoss, GilbertElliottLoss, NoLoss


def test_everything_at_once():
    scn = continental_scenario(
        seed=1401,
        loss_factory=lambda: GilbertElliottLoss(
            mean_good=3.0, mean_bad=0.04, bad_loss=0.4
        ),
    )
    overlay = scn.overlay
    internet = scn.internet
    sim = scn.sim

    # --- workloads -----------------------------------------------------
    video_rx = VideoReceiver(overlay, "site-LAX", playout_delay=0.5)
    video_rx2 = VideoReceiver(overlay, "site-MIA", playout_delay=0.5)
    scn.run_for(0.5)
    video = VideoSource(overlay, "site-NYC", rate_mbps=1.0,
                        deadline=0.5).start()

    control_got = []
    overlay.client("site-SEA", 7, on_message=lambda m: control_got.append(m.seq))
    control_tx = overlay.client("site-WAS")
    control = CbrSource(
        sim, control_tx, Address("site-SEA", 7), rate_pps=20,
        service=ServiceSpec(link=LINK_RELIABLE, ordered=True, deadline=2.0),
    ).start()

    # --- chaos schedule --------------------------------------------------
    sim.schedule(5.0, lambda: internet.fail_fiber("ispA", "NYC", "CHI"))
    sim.schedule(8.0, lambda: overlay.crash("site-DEN"))
    sim.schedule(12.0, lambda: internet.set_isp_loss(
        "ispB", lambda: BernoulliLoss(0.25)))
    sim.schedule(18.0, lambda: internet.fail_fiber("ispB", "DAL", "ATL"))
    sim.schedule(22.0, lambda: internet.set_isp_loss("ispB", NoLoss))
    sim.schedule(25.0, lambda: overlay.recover("site-DEN"))
    sim.schedule(28.0, lambda: internet.repair_fiber("ispA", "NYC", "CHI"))
    sim.schedule(28.0, lambda: internet.repair_fiber("ispB", "DAL", "ATL"))

    scn.run_for(40.0)
    video.stop()
    control.stop()
    scn.run_for(3.0)

    # --- invariants ------------------------------------------------------
    # Ordered control flow: in order, no duplicates, majority through
    # even at the height of the chaos.
    assert control_got == sorted(control_got)
    assert len(control_got) == len(set(control_got))
    assert len(control_got) > 0.75 * control.sent
    # Once the repairs land (t >= 28 s), delivery is essentially perfect.
    from repro.analysis.metrics import flow_stats

    settled = flow_stats(overlay.trace, control.flow, "site-SEA:7",
                         after=30.0 + 2.0)  # warm-up offset + settle
    assert settled.sent > 100
    assert settled.delivery_ratio > 0.97

    # Video kept playing through everything.
    for rx in (video_rx, video_rx2):
        quality = rx.quality(video.frames_sent)
        assert quality.continuity > 0.90, quality

    # After the dust settles the overlay reconverges completely.
    scn.run_for(internet.isps["ispA"].convergence_delay + 10.0)
    assert overlay.converged()

    # And service is fully healthy again.
    fresh = []
    overlay.client("site-LAX", 99, on_message=fresh.append)
    overlay.client("site-NYC").send(Address("site-LAX", 99))
    scn.run_for(1.0)
    assert len(fresh) == 1

    # No internal-consistency violations surfaced anywhere.
    assert overlay.counters.get("overlay-ttl-exceeded") < 10
    assert overlay.counters.get("unknown-control") == 0
