"""Unit tests for recurring timers and event recycling.

Every behaviour is checked in both engines — ``recycle_timers=True``
(the recycled heap) and ``False`` (the allocate-per-tick legacy mode
kept as the benchmark baseline) — since the whole point of recycling is
that it changes where event objects come from, never what fires when.
"""

import pytest

from repro.sim.events import SimulationError, Simulator

BOTH_MODES = pytest.mark.parametrize("recycle", [True, False],
                                     ids=["recycled", "legacy"])


@BOTH_MODES
def test_periodic_fires_on_cadence(recycle):
    sim = Simulator(recycle_timers=recycle)
    times = []
    sim.schedule_periodic(0.5, lambda: times.append(sim.now))
    sim.run(until=2.25)
    assert times == [0.5, 1.0, 1.5, 2.0]


@BOTH_MODES
def test_periodic_first_offset(recycle):
    sim = Simulator(recycle_timers=recycle)
    times = []
    sim.schedule_periodic(1.0, lambda: times.append(sim.now), first=0.0)
    sim.run(until=2.5)
    assert times == [0.0, 1.0, 2.0]


@BOTH_MODES
def test_periodic_passes_args(recycle):
    sim = Simulator(recycle_timers=recycle)
    seen = []
    sim.schedule_periodic(1.0, lambda a, b: seen.append((a, b)), 7, "x")
    sim.run(until=2.0)
    assert seen == [(7, "x"), (7, "x")]


@BOTH_MODES
def test_periodic_counters(recycle):
    sim = Simulator(recycle_timers=recycle)
    timer = sim.schedule_periodic(1.0, lambda: None)
    sim.run(until=3.5)
    assert timer.fired == 3
    # The firing at t=3.0 re-armed for t=4.0 before `until` stopped us.
    assert timer.rearmed == 3
    assert sim.timer_stats() == {"timer.fired": 3, "timer.rearmed": 3}


@BOTH_MODES
def test_periodic_cancel_stops_future_firings(recycle):
    sim = Simulator(recycle_timers=recycle)
    times = []
    timer = sim.schedule_periodic(1.0, lambda: times.append(sim.now))
    sim.schedule(2.5, timer.cancel)
    sim.run(until=10.0)
    assert times == [1.0, 2.0]
    assert not timer.active


@BOTH_MODES
def test_periodic_self_cancel_suppresses_rearm(recycle):
    sim = Simulator(recycle_timers=recycle)
    times = []
    timer = sim.schedule_periodic(1.0, lambda: None)

    def tick():
        times.append(sim.now)
        if timer.fired >= 2:
            timer.cancel()

    timer.fn = tick
    sim.run(until=10.0)
    assert times == [1.0, 2.0]


@BOTH_MODES
def test_cancel_while_queued_keeps_accounting(recycle):
    sim = Simulator(recycle_timers=recycle)
    timer = sim.schedule_periodic(1.0, lambda: None)
    one_shot = sim.schedule(5.0, lambda: None)
    timer.cancel()
    assert sim.pending_events == 1
    one_shot.cancel()
    assert sim.pending_events == 0
    sim.run(until=10.0)
    assert timer.fired == 0
    assert sim.pending_events == 0


@BOTH_MODES
def test_reschedule_changes_cadence(recycle):
    sim = Simulator(recycle_timers=recycle)
    times = []
    timer = sim.schedule_periodic(1.0, lambda: times.append(sim.now))
    sim.schedule(2.5, timer.reschedule, 0.25)
    sim.run(until=3.2)
    assert times == [1.0, 2.0, 2.75, 3.0]


@BOTH_MODES
def test_reschedule_revives_cancelled_timer(recycle):
    sim = Simulator(recycle_timers=recycle)
    times = []
    timer = sim.schedule_periodic(1.0, lambda: times.append(sim.now))
    timer.cancel()
    timer.reschedule(2.0)
    sim.run(until=5.0)
    assert times == [2.0, 4.0]


@BOTH_MODES
def test_rearm_after_clear(recycle):
    sim = Simulator(recycle_timers=recycle)
    times = []
    timer = sim.schedule_periodic(1.0, lambda: times.append(sim.now))
    sim.run(until=1.5)
    sim.clear()
    assert not timer.active
    sim.run(until=4.0)
    assert times == [1.0]  # cleared timers stay silent...
    timer.reschedule(1.0)  # ...until explicitly re-armed
    sim.run(until=6.5)
    assert times == [1.0, 5.0, 6.0]


@BOTH_MODES
def test_periodic_interleaves_with_one_shots_at_same_instant(recycle):
    # A periodic firing at time T and one-shots scheduled for T must
    # run in seq order, exactly as if the timer were a chain of
    # one-shots ending with "schedule the next tick".
    sim = Simulator(recycle_timers=recycle)
    fired = []
    sim.schedule(1.0, fired.append, "before")  # scheduled first
    sim.schedule_periodic(1.0, fired.append, "tick")
    sim.schedule(1.0, fired.append, "after")
    sim.schedule(2.0, fired.append, "next-round")
    sim.run(until=2.5)
    # The t=2.0 re-arm seq is allocated at the end of the t=1.0 firing,
    # so "next-round" (scheduled before that) outranks the second tick.
    assert fired == ["before", "tick", "after", "next-round", "tick"]


@BOTH_MODES
def test_manual_timer_arms_fires_once_and_rearms(recycle):
    sim = Simulator(recycle_timers=recycle)
    times = []
    timer = sim.timer(lambda: times.append(sim.now))
    assert not timer.active
    timer.reschedule(1.0)
    assert timer.active
    sim.run(until=5.0)
    assert times == [1.0]  # fires once, does not auto-re-arm
    assert not timer.active
    timer.reschedule(0.5)
    sim.run(until=6.0)
    assert times == [1.0, 5.5]


@BOTH_MODES
def test_manual_timer_cancel_before_firing(recycle):
    sim = Simulator(recycle_timers=recycle)
    fired = []
    timer = sim.timer(fired.append, "x")
    timer.reschedule(1.0)
    timer.cancel()
    sim.run(until=5.0)
    assert fired == []


def test_periodic_interval_must_be_positive():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_periodic(0.0, lambda: None)
    timer = sim.schedule_periodic(1.0, lambda: None)
    with pytest.raises(SimulationError):
        timer.reschedule(-1.0)


def test_repush_recycles_event_with_fresh_seq():
    sim = Simulator()
    fired = []

    def hop(n):
        fired.append((n, sim.now))
        if n < 3:
            # Recycle the just-fired event for the next leg of the
            # chain, the way the Internet walks a datagram hop-by-hop.
            sim.repush(event, sim.now + 0.5, None, (n + 1,))

    event = sim.schedule(1.0, hop, 1)
    old_seq = event.seq
    sim.run()
    assert fired == [(1, 1.0), (2, 1.5), (3, 2.0)]
    assert event.seq > old_seq


def test_repush_while_queued_raises():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.repush(event, 2.0)


def _trace(recycle: bool) -> list:
    """A mixed workload: two periodic cadences, a self-cancelling
    timer, a manual timer, and one-shot chains, all recorded."""
    sim = Simulator(recycle_timers=recycle)
    trace = []

    def record(tag):
        trace.append((round(sim.now, 9), tag))

    sim.schedule_periodic(0.3, record, "fast-tick")
    slow = sim.schedule_periodic(0.7, record, "slow-tick", first=0.1)
    sim.schedule(1.0, slow.reschedule, 0.4)
    manual = sim.timer(record, "manual")
    sim.schedule(0.45, manual.reschedule, 0.2)
    stopper = sim.schedule_periodic(0.5, record, "doomed")
    sim.schedule(1.6, stopper.cancel)

    def chain(n):
        record(f"chain-{n}")
        if n < 4:
            sim.schedule(0.35, chain, n + 1)

    sim.schedule(0.2, chain, 0)
    sim.run(until=3.0)
    return trace


def test_recycled_and_legacy_traces_are_identical():
    # The tentpole invariant: both engines allocate (time, seq) at the
    # same points, so a mixed periodic/one-shot workload produces the
    # same trace event-for-event.
    assert _trace(True) == _trace(False)


def test_recycled_trace_is_deterministic():
    assert _trace(True) == _trace(True)
