"""Multi-hop IT-Reliable backpressure (Sec IV-B).

"When a node's storage for a particular flow fills, it stops accepting
new messages for that flow, creating backpressure (potentially all the
way back to the source)."

On a 3-hop chain whose *last* link is slow, the per-flow buffers fill
hop by hop upstream until the source client's sends are refused; when
the bottleneck drains, acceptance resumes and everything that was
accepted is delivered exactly once, in order.
"""

from repro.core.config import OverlayConfig
from repro.core.message import Address, LINK_IT_RELIABLE, ServiceSpec
from repro.core.network import OverlayNetwork
from repro.net.backbone import FiberLink
from repro.net.topologies import line_internet
from repro.sim.events import Simulator
from repro.sim.rng import RngRegistry


def _chain_overlay(seed=1001, capacity=1_000_000.0):
    sim = Simulator()
    rngs = RngRegistry(seed)
    internet = line_internet(sim, rngs, n_hops=3, hop_delay=0.005)
    overlay = OverlayNetwork(
        internet,
        [f"h{i}" for i in range(4)],
        [(f"h{i}", f"h{i + 1}") for i in range(3)],
        OverlayConfig(access_capacity_bps=capacity),
    )
    overlay.warm_up(2.0)
    return sim, internet, overlay


def test_backpressure_propagates_to_source():
    sim, internet, overlay = _chain_overlay()
    # Throttle only the last overlay hop: h2's pacer is per-node config,
    # so instead choke the last *fiber* to force it.
    last_fiber = internet.isps["line"].link_between("r2", "r3")
    last_fiber.capacity_bps = 100_000.0  # 100 kbit/s bottleneck

    overlay.client("h3", 7, on_message=lambda m: None)
    tx = overlay.client("h0")
    svc = ServiceSpec(link=LINK_IT_RELIABLE)
    refused = 0
    accepted = 0
    for burst in range(60):
        for __ in range(20):
            if tx.send(Address("h3", 7), size=1000, service=svc):
                accepted += 1
            else:
                refused += 1
        sim.run(until=sim.now + 0.1)
    assert refused > 0, "backpressure never reached the source"
    assert accepted > 0


def test_accepted_messages_all_delivered_in_order_after_drain():
    sim, internet, overlay = _chain_overlay(seed=1002)
    last_fiber = internet.isps["line"].link_between("r2", "r3")
    last_fiber.capacity_bps = 200_000.0

    got = []
    overlay.client("h3", 7, on_message=lambda m: got.append(m.seq))
    tx = overlay.client("h0")
    svc = ServiceSpec(link=LINK_IT_RELIABLE, ordered=True)
    accepted = 0
    for burst in range(30):
        for __ in range(10):
            if tx.send(Address("h3", 7), size=1000, service=svc):
                accepted += 1
        sim.run(until=sim.now + 0.1)
    # Let the bottleneck drain completely.
    last_fiber.capacity_bps = None
    sim.run(until=sim.now + 30.0)
    assert got == list(range(accepted))


def test_blocked_flow_does_not_starve_parallel_flow():
    """Per-flow storage: a flow wedged behind the bottleneck must not
    stop a second flow on the same links toward a different port."""
    sim, internet, overlay = _chain_overlay(seed=1003)
    # Choke the shared fiber so the fat flow saturates every hop, then
    # check the thin flow's round-robin share still gets through.
    last_fiber = internet.isps["line"].link_between("r2", "r3")
    last_fiber.capacity_bps = 400_000.0

    got_a, got_b = [], []
    overlay.client("h3", 7, on_message=lambda m: got_a.append(m.seq))
    overlay.client("h3", 8, on_message=lambda m: got_b.append(m.seq))
    tx_a = overlay.client("h0")
    tx_b = overlay.client("h0")
    svc = ServiceSpec(link=LINK_IT_RELIABLE)
    for burst in range(40):
        for __ in range(10):
            tx_a.send(Address("h3", 7), size=1000, service=svc)
        tx_b.send(Address("h3", 8), size=200, service=svc)
        sim.run(until=sim.now + 0.05)
    sim.run(until=sim.now + 10.0)
    # The small flow got every one of its messages through even though
    # the fat flow saturated the path the whole time.
    assert len(got_b) == 40
