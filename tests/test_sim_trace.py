"""Unit tests for trace records and counters."""

import math

from repro.sim.trace import Counter, DeliveryRecord, TraceCollector


def test_delivery_record_latency():
    record = DeliveryRecord("f", 0, sent_at=1.0, delivered_at=1.25, destination="d")
    assert record.delivered
    assert record.latency == 0.25


def test_undelivered_record_has_no_latency():
    record = DeliveryRecord("f", 0, sent_at=1.0, delivered_at=None, destination="d")
    assert not record.delivered
    assert record.latency is None
    assert not record.within(10.0)


def test_within_deadline_boundary():
    record = DeliveryRecord("f", 0, sent_at=0.0, delivered_at=0.2, destination="d")
    assert record.within(0.2)
    assert not record.within(0.19)


def test_counter_accumulates():
    counter = Counter()
    counter.add("x")
    counter.add("x", 2.5)
    assert counter.get("x") == 3.5
    assert counter.get("missing") == 0.0
    assert counter.as_dict() == {"x": 3.5}


def test_trace_filters_by_flow_and_destination():
    trace = TraceCollector()
    trace.record_delivery("f1", 0, 0.0, 0.1, "a")
    trace.record_delivery("f1", 1, 0.0, 0.1, "b")
    trace.record_delivery("f2", 0, 0.0, 0.1, "a")
    assert len(trace.for_flow("f1")) == 2
    assert len(trace.for_destination("a")) == 2


def test_trace_send_records():
    trace = TraceCollector()
    trace.record_send("f1", 0, 1.0, 100, "dst")
    trace.record_send("f2", 0, 1.0, 100, "dst")
    sends = trace.sends_for_flow("f1")
    assert len(sends) == 1
    assert sends[0].seq == 0
