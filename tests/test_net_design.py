"""Topology design tooling: auditing and designing Sec II-A overlays."""

import pytest

from repro.net.design import (
    audit_overlay,
    candidate_links,
    design_overlay,
)
from repro.net.topologies import (
    US_CITIES,
    continental_internet,
    overlay_edges,
    site_name,
)
from repro.sim.events import Simulator
from repro.sim.rng import RngRegistry

SITES = [site_name(c) for c in US_CITIES]


def _internet(seed=1):
    return continental_internet(Simulator(), RngRegistry(seed))


def test_audit_of_the_standard_overlay():
    internet = _internet()
    edges = [(site_name(a), site_name(b)) for a, b in overlay_edges(["ispA", "ispB"])]
    report = audit_overlay(internet, SITES, edges)
    assert report.nodes == 12
    assert report.two_connected
    assert report.max_link_delay < 0.016
    assert report.clique_fraction < 0.5
    assert report.max_stretch < 2.5
    assert report.satisfies(max_link_delay=0.016, max_stretch=2.5)


def test_audit_flags_fragile_designs():
    internet = _internet()
    # A star through CHI: one dead node partitions it.
    star = [(site_name("CHI"), site_name(c)) for c in US_CITIES if c != "CHI"]
    report = audit_overlay(internet, SITES, star)
    assert not report.two_connected
    assert not report.satisfies(max_link_delay=1.0, max_stretch=100.0)


def test_candidate_links_respect_delay_budget():
    internet = _internet()
    candidates = candidate_links(internet, SITES, max_link_delay=0.010)
    for a, b in candidates:
        report = audit_overlay(internet, [a, b], [(a, b)])
        assert report.max_link_delay <= 0.010
    # A tiny budget leaves only the short fibers.
    assert len(candidates) < len(candidate_links(internet, SITES, 0.020))


def test_designed_overlay_satisfies_all_rules():
    internet = _internet()
    edges = design_overlay(internet, SITES, max_link_delay=0.015, max_stretch=1.8)
    report = audit_overlay(internet, SITES, edges)
    assert report.two_connected
    assert report.max_link_delay <= 0.015
    assert report.max_stretch <= 1.8
    assert report.clique_fraction < 1.0


def test_design_prunes_redundant_links():
    internet = _internet()
    budget = 0.015
    candidates = candidate_links(internet, SITES, budget)
    designed = design_overlay(internet, SITES, max_link_delay=budget,
                              max_stretch=1.8)
    assert len(designed) < len(candidates)
    assert set(designed) <= set(candidates)


def test_design_rejects_impossible_budget():
    internet = _internet()
    with pytest.raises(ValueError):
        design_overlay(internet, SITES, max_link_delay=0.003)


def test_designed_overlay_actually_deploys():
    """The designed topology works as a live overlay."""
    from repro.core.message import Address
    from repro.core.network import OverlayNetwork

    sim = Simulator()
    internet = continental_internet(sim, RngRegistry(7))
    edges = design_overlay(internet, SITES, max_link_delay=0.015,
                           max_stretch=1.8)
    overlay = OverlayNetwork(internet, SITES, edges)
    overlay.warm_up(2.0)
    assert overlay.converged()
    got = []
    overlay.client("site-LAX", 7, on_message=got.append)
    overlay.client("site-BOS").send(Address("site-LAX", 7))
    sim.run(until=sim.now + 1.0)
    assert len(got) == 1
