"""Hybrid fluid traffic engine (repro.core.fluid).

Fluid bulk flows advance as piecewise-constant rate intervals settled
analytically; the control plane and sampled probe packets stay
packet-level. These tests pin the calibration story (fluid == packet
within documented tolerance, byte-identical packet traces with the
engine on), the re-solve triggers, the lifecycle plumbing in the
traffic sources, and the analytic loss/metrics helpers.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.calibrate import run_calibration
from repro.analysis.metrics import (
    flow_stats,
    fluid_flow_stats,
    weighted_latency_summary,
)
from repro.analysis.scenarios import triangle_scenario
from repro.analysis.workloads import CbrSource, PoissonSource
from repro.core.fluid import FluidFlow, validate_fluid_spec
from repro.core.message import (
    Address,
    LINK_RELIABLE,
    ROUTING_ADAPTIVE,
    ServiceSpec,
)
from repro.net.loss import BernoulliLoss, CompositeLoss, ScheduledOutages
from repro.sim.rng import RngRegistry


def _fluid_cbr(scn, src, sink, port=7, rate=10.0, **kwargs):
    engine = scn.overlay.fluid_engine()
    scn.overlay.client(sink, port)
    source = CbrSource(
        scn.sim, scn.overlay.client(src), Address(sink, port),
        rate_pps=rate, fluid=engine, **kwargs,
    )
    return engine, source


# --------------------------------------------------------------- validation


def test_fluid_spec_rejects_unmodellable_services():
    dst = Address("hy", 7)
    with pytest.raises(ValueError, match="best-effort"):
        validate_fluid_spec(dst, ServiceSpec(link=LINK_RELIABLE))
    with pytest.raises(ValueError, match="link-state"):
        validate_fluid_spec(dst, ServiceSpec(routing=ROUTING_ADAPTIVE))
    with pytest.raises(ValueError, match="anycast"):
        validate_fluid_spec(Address("acast:pool", 7), ServiceSpec())
    validate_fluid_spec(dst, ServiceSpec())  # best-effort unicast is fine


def test_traffic_source_validation():
    scn = triangle_scenario(seed=31)
    engine, __ = _fluid_cbr(scn, "hx", "hy")
    with pytest.raises(ValueError, match="rate must be positive"):
        CbrSource(scn.sim, scn.overlay.client("hx"), Address("hy", 7),
                  rate_pps=0.0)
    with pytest.raises(ValueError, match="probe_every"):
        CbrSource(scn.sim, scn.overlay.client("hx"), Address("hy", 7),
                  rate_pps=5.0, fluid=engine, probe_every=1)
    # Fluid mode validates the service eagerly, at construction.
    with pytest.raises(ValueError, match="best-effort"):
        CbrSource(scn.sim, scn.overlay.client("hx"), Address("hy", 7),
                  rate_pps=5.0, service=ServiceSpec(link=LINK_RELIABLE),
                  fluid=engine)


# ------------------------------------------------------------ analytic loss


def test_scheduled_outages_fluid_rate_is_exact_overlap():
    outage = ScheduledOutages([(2.0, 4.0)])
    assert outage.fluid_rate(0.0, 1.0) == 0.0
    assert outage.fluid_rate(1.0, 3.0) == pytest.approx(0.5)
    assert outage.fluid_rate(2.0, 4.0) == pytest.approx(1.0)
    assert outage.fluid_rate(3.0, 7.0) == pytest.approx(0.25)
    assert outage.next_transition(0.0) == 2.0
    assert outage.next_transition(2.0) == 4.0
    assert outage.next_transition(4.0) is None


def test_composite_loss_fluid_rate_composes_survival():
    loss = CompositeLoss(BernoulliLoss(0.1), BernoulliLoss(0.2))
    assert loss.fluid_rate(0.0, 1.0) == pytest.approx(1 - 0.9 * 0.8)
    assert loss.next_transition(0.0) is None
    timed = CompositeLoss(BernoulliLoss(0.1), ScheduledOutages([(5.0, 6.0)]))
    assert timed.next_transition(0.0) == 5.0


# ----------------------------------------------------------- metrics helpers


def test_weighted_latency_summary():
    summary = weighted_latency_summary([(3.0, 0.010), (1.0, 0.020)])
    assert summary.count == pytest.approx(4.0)
    assert summary.mean == pytest.approx(0.0125)
    assert summary.p50 == pytest.approx(0.010)
    assert summary.p99 == pytest.approx(0.020)
    assert summary.max == pytest.approx(0.020)
    assert summary.jitter == 0.0
    assert weighted_latency_summary([]).count == 0
    assert math.isnan(weighted_latency_summary([]).mean)


def test_fluid_flow_stats_shapes_like_packet_stats():
    flow = FluidFlow("hx", Address("hx", 5), Address("hy", 7), 10.0, 1200,
                     ServiceSpec())
    flow.offered = 10.0
    flow._account("hy:7", 6.0, 0.010)
    flow._account("hy:7", 3.0, 0.030)
    stats = fluid_flow_stats(flow, "hy:7", deadline=0.020)
    assert stats.sent == pytest.approx(10.0)
    assert stats.delivered == pytest.approx(9.0)
    assert stats.delivery_ratio == pytest.approx(0.9)
    assert stats.within_deadline == pytest.approx(0.6)
    assert stats.latency.mean == pytest.approx((6 * 0.010 + 3 * 0.030) / 9)


# ------------------------------------------------------- fidelity / identity


def test_fluid_matches_packet_on_triangle():
    """Same flow, same scenario: the fluid model's delivery and latency
    equal the packet run's (no loss, no queueing — both are exact)."""
    packet_scn = triangle_scenario(seed=32)
    packet_scn.overlay.client("hy", 7)
    packet_src = CbrSource(
        packet_scn.sim, packet_scn.overlay.client("hx"), Address("hy", 7),
        rate_pps=10.0, duration=5.0,
    ).start()
    packet_scn.run_for(6.0)
    packet = flow_stats(packet_scn.overlay.trace, packet_src.flow, "hy:7")

    fluid_scn = triangle_scenario(seed=32)
    engine, source = _fluid_cbr(fluid_scn, "hx", "hy", rate=10.0,
                                duration=5.0)
    source.start()
    fluid_scn.run_for(6.0)
    engine.settle_now()
    fluid = fluid_flow_stats(source.fluid_flow, "hy:7")

    assert fluid.flow == packet.flow
    assert source.fluid_flow.offered == pytest.approx(50.0)
    assert fluid.delivery_ratio == pytest.approx(packet.delivery_ratio)
    assert fluid.latency.mean == pytest.approx(packet.latency.mean, abs=1e-9)


def test_calibration_harness_within_documented_tolerance():
    """The 16-node calibration: bulk flows agree within tolerance AND
    the pure packet flows' traces are byte-identical with the fluid
    engine attached (inertness of the hybrid hooks)."""
    result = run_calibration(run_time=6.0)
    result.check()
    assert result.fluid_wall_events < result.packet_wall_events


def test_probe_sampling_keeps_packet_evidence():
    scn = triangle_scenario(seed=33)
    engine, source = _fluid_cbr(scn, "hx", "hy", rate=10.0, duration=4.0,
                                probe_every=5)
    source.start()
    scn.run_for(5.0)
    engine.settle_now()
    # Every 5th message rode the packet path on the same flow id...
    probes = [r for r in scn.overlay.trace.records
              if r.flow == source.flow and r.destination == "hy:7"]
    assert len(probes) >= 7
    assert all(r.latency is not None for r in probes)
    # ...and the fluid share shrank to 4/5 of the nominal rate.
    assert source.fluid_rate == pytest.approx(8.0)
    assert source.fluid_flow.offered == pytest.approx(8.0 * 4.0)


def test_fluid_off_is_inert():
    scn = triangle_scenario(seed=34)
    scn.overlay.client("hy", 7)
    CbrSource(scn.sim, scn.overlay.client("hx"), Address("hy", 7),
              rate_pps=20.0, duration=2.0).start()
    scn.run_for(3.0)
    assert scn.internet.fluid_listeners == []
    assert "fluid" not in scn.overlay.status()
    fluid_counters = [k for k in scn.overlay.counters.as_dict()
                      if k.startswith("fluid.")]
    assert fluid_counters == []


# ------------------------------------------------------------- re-solve


def test_fiber_fail_and_repair_trigger_resolves_and_reroute():
    scn = triangle_scenario(seed=35)
    engine, source = _fluid_cbr(scn, "hx", "hz", rate=10.0)
    source.start()
    scn.run_for(2.0)
    resolves_before = engine.resolves
    scn.internet.fail_fiber("tri", "x", "z")
    scn.run_for(8.0)  # hello timeout -> LSU reroute via hy
    assert engine.resolves > resolves_before
    scn.internet.repair_fiber("tri", "x", "z")
    scn.run_for(8.0)
    source.stop()
    engine.settle_now()
    flow = source.fluid_flow
    latencies = {round(lat, 6): w for w, lat in flow.intervals("hz:7")}
    # Direct x-z leg (10 ms fiber + proc) before the cut and after the
    # repair; the detour via hy (>= 20 ms of fiber) while it was down.
    assert any(lat == pytest.approx(0.0105) for lat in latencies)
    assert any(lat > 0.015 for lat, w in latencies.items() if w > 0)
    # Loss during the cut: delivered strictly less than offered.
    assert flow.delivered("hz:7") < flow.offered
    assert engine.counters.get("fluid.poke:fiber-repair") > 0


def test_flow_start_stop_resolves_are_coalesced():
    scn = triangle_scenario(seed=36)
    engine = scn.overlay.fluid_engine()
    scn.overlay.client("hy", 7)
    sources = [
        CbrSource(scn.sim, scn.overlay.client("hx"), Address("hy", 7),
                  rate_pps=2.0, fluid=engine).start()
        for __ in range(20)
    ]
    resolves_before = engine.resolves
    scn.run_for(0.5)
    # 20 same-instant flow starts coalesce into one re-solve (unrelated
    # control-plane boundaries, e.g. an adaptive-cost LSU landing in
    # the window, may add a couple more — never one per flow).
    assert engine.counters.get("fluid.poke:flow-start") == 20.0
    assert 1 <= engine.resolves - resolves_before <= 3
    for source in sources:
        source.stop()
    scn.run_for(0.5)
    assert not engine.flows


def test_duration_and_stop_lifecycle():
    scn = triangle_scenario(seed=37)
    engine, source = _fluid_cbr(scn, "hx", "hy", rate=10.0, duration=2.0)
    source.start(delay=1.0)
    scn.run_for(0.5)
    assert source.fluid_flow is None  # not started yet
    scn.run_for(4.0)
    engine.settle_now()
    assert source.fluid_flow is not None
    assert not source.fluid_flow.active
    assert source.fluid_flow.offered == pytest.approx(20.0)
    source.stop()  # idempotent after duration expiry
    assert not engine.flows


def test_poisson_source_fluid_models_mean_rate():
    scn = triangle_scenario(seed=38)
    engine = scn.overlay.fluid_engine()
    scn.overlay.client("hy", 7)
    rng = RngRegistry(99).stream("poisson")
    source = PoissonSource(
        scn.sim, rng, scn.overlay.client("hx"), Address("hy", 7),
        rate_pps=40.0, duration=3.0, fluid=engine,
    ).start()
    scn.run_for(4.0)
    engine.settle_now()
    assert source.fluid_flow.offered == pytest.approx(120.0)
    assert source.sent == 0  # no probes requested -> no packets


# ------------------------------------------------------------- multicast


def test_multicast_fluid_delivers_to_group_and_tracks_leave():
    scn = triangle_scenario(seed=39)
    engine = scn.overlay.fluid_engine()
    rx_y = scn.overlay.client("hy", 9000)
    rx_z = scn.overlay.client("hz", 9000)
    rx_y.join("mcast:g")
    rx_z.join("mcast:g")
    scn.run_for(1.0)  # GSUs flood
    source = CbrSource(
        scn.sim, scn.overlay.client("hx"), Address("mcast:g", 9000),
        rate_pps=10.0, fluid=engine,
    ).start()
    scn.run_for(2.0)
    engine.settle_now()
    flow = source.fluid_flow
    mid_y, mid_z = flow.delivered("hy:9000"), flow.delivered("hz:9000")
    assert mid_y == pytest.approx(flow.offered)
    assert mid_z == pytest.approx(flow.offered)
    rx_z.leave("mcast:g")
    scn.run_for(2.0)
    source.stop()
    engine.settle_now()
    # hy kept receiving; hz stopped at the leave boundary.
    assert flow.delivered("hy:9000") == pytest.approx(flow.offered)
    assert flow.delivered("hz:9000") < flow.offered


# ------------------------------------------------------------ flow table


def test_fluid_traffic_lands_in_flow_tables():
    scn = triangle_scenario(seed=40)
    engine, source = _fluid_cbr(scn, "hx", "hy", rate=10.0)
    source.start()
    scn.run_for(2.0)
    engine.settle_now()
    origin = [e for e in scn.overlay.node("hx").flows.active(scn.sim.now)
              if e.flow == source.flow]
    assert origin and origin[0].fluid_messages > 0
    assert origin[0].fluid_bytes > 0
    status = scn.overlay.status()
    assert status["fluid"]["flows"] == 1
    assert status["fluid"]["offered"] == pytest.approx(
        source.fluid_flow.offered)
