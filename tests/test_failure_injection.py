"""Fault injection: fail-stop node crashes and recovery.

A crashed overlay daemon goes silent (no hellos, no forwarding);
neighbors detect the silence within the hello-miss budget, flood
link-down updates, and the overlay routes around the dead node —
Sec II-A's resilience story for node (not just link) failures.
"""

from repro.analysis.metrics import availability_gaps
from repro.analysis.scenarios import continental_scenario
from repro.analysis.workloads import CbrSource
from repro.core.message import Address, ROUTING_FLOOD, ServiceSpec
from repro.sim.trace import DeliveryRecord
from tests.conftest import make_triangle_overlay


def test_crashed_node_is_detected_and_routed_around():
    scn = make_triangle_overlay(seed=401)
    overlay = scn.overlay
    # Force hx->hz through hy, then crash hy.
    scn.internet.isps["tri"].fail_link("x", "z")
    scn.run_for(1.0)
    assert overlay.overlay_path("hx", "hz") == ["hx", "hy", "hz"]
    overlay.crash("hy")
    scn.run_for(2.0)
    # hy's links are down in everyone's connectivity graph...
    adj = overlay.nodes["hx"].routing.adjacency()
    assert adj.get("hy", {}) == {} or "hy" not in adj["hx"]
    # ...and after the underlay reconverges the direct leg works again.
    scn.internet.isps["tri"].repair_link("x", "z")
    scn.run_for(8.0)
    got = []
    overlay.client("hz", 7, on_message=got.append)
    overlay.client("hx").send(Address("hz", 7))
    scn.run_for(1.0)
    assert len(got) == 1


def test_crash_detection_is_subsecond():
    scn = make_triangle_overlay(seed=402)
    overlay = scn.overlay
    overlay.crash("hy")
    crash_at = scn.sim.now
    # Watch hx's link to hy flip down.
    link = overlay.nodes["hx"].links["hy"]
    while link.up and scn.sim.now < crash_at + 2.0:
        scn.sim.step()
    assert not link.up
    assert scn.sim.now - crash_at < 1.0


def test_recovered_node_rejoins_routing():
    scn = make_triangle_overlay(seed=403)
    overlay = scn.overlay
    overlay.crash("hy")
    scn.run_for(2.0)
    overlay.recover("hy")
    scn.run_for(2.0)
    assert overlay.converged()
    got = []
    overlay.client("hy", 7, on_message=got.append)
    overlay.client("hx").send(Address("hy", 7))
    scn.run_for(1.0)
    assert len(got) == 1


def test_stream_survives_node_crash_on_path():
    """A continental stream keeps flowing when an intermediate node
    dies mid-stream: sub-second interruption, then back to normal."""
    scn = continental_scenario(seed=404)
    overlay = scn.overlay
    times = []
    overlay.client("site-LAX", 7, on_message=lambda m: times.append(scn.sim.now))
    tx = overlay.client("site-NYC")
    source = CbrSource(scn.sim, tx, Address("site-LAX", 7), rate_pps=50).start()
    scn.run_for(3.0)
    victim = overlay.overlay_path("site-NYC", "site-LAX")[1]
    overlay.crash(victim)
    scn.run_for(10.0)
    source.stop()
    scn.run_for(1.0)
    records = [DeliveryRecord("p", i, t, t, "d") for i, t in enumerate(times)]
    gaps = availability_gaps(records, expected_interval=0.02)
    assert gaps, "expected a brief interruption at the crash"
    assert max(d for __, d in gaps) < 1.0
    # Traffic is flowing again at the end.
    assert times[-1] > scn.sim.now - 2.0


def test_flooding_tolerates_node_crash_without_detection():
    """Constrained flooding does not even need the crash detected:
    copies on other links deliver immediately."""
    scn = continental_scenario(seed=405)
    overlay = scn.overlay
    victim = overlay.overlay_path("site-DAL", "site-CHI")[1]
    overlay.crash(victim)
    # No time for detection: send immediately after the crash.
    got = []
    overlay.client("site-CHI", 7, on_message=got.append)
    overlay.client("site-DAL").send(
        Address("site-CHI", 7), service=ServiceSpec(routing=ROUTING_FLOOD)
    )
    scn.run_for(1.0)
    assert len(got) == 1


def test_multicast_tree_heals_after_member_path_crash():
    scn = continental_scenario(seed=406)
    overlay = scn.overlay
    got = []
    rx = overlay.client("site-MIA", 7, on_message=lambda m: got.append(m.seq))
    rx.join("mcast:g")
    scn.run_for(1.0)
    tx = overlay.client("site-SEA")
    source = CbrSource(scn.sim, tx, Address("mcast:g", 7), rate_pps=20).start()
    scn.run_for(2.0)
    # Crash the tree's first hop below the source.
    children = overlay.nodes["site-SEA"].routing.multicast_children(
        "site-SEA", "mcast:g"
    )
    overlay.crash(children[0])
    scn.run_for(5.0)
    source.stop()
    scn.run_for(1.0)
    # Delivery resumed after the tree recomputed around the dead node.
    received_late = [s for s in got if s > 20 * 4]
    assert received_late, "multicast never healed after the crash"
