"""The vectorized approximate columnar tier (``columnar_vectorized``).

Unlike exact columnar mode (byte-identical, fuzzed in
``test_properties_columnar.py``), the vectorized tier is *approximate*:
per-packet loss/jitter draws move to a per-link numpy stream and
arrivals are settled in bulk. Its contract is statistical — delivery
ratio and mean latency within the documented calibration tolerances —
plus some exact obligations these tests pin down directly:

* batched loss draws advance the scalar RNG stream by exactly the
  documented amounts (the burst process stays on the scalar stream,
  per-packet verdicts move to the vector stream);
* ``batch_traverse`` reproduces the scalar queueing recurrence
  (including bounded-queue overflow) and advances the link counters
  exactly as k scalar traverses would;
* ``columnar_window=0`` remains the byte-identical exact mode;
* configuration errors (no columnar, no window, no numpy) are clear.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro.vector as vector
from repro.analysis.calibrate import (
    DELIVERY_TOL,
    DELIVERY_TOL_LOSSY,
    LATENCY_TOL,
    build_overlay,
    run_vector_calibration,
)
from repro.analysis.metrics import flow_stats
from repro.analysis.workloads import CbrSource
from repro.audit.diff import assert_identical
from repro.core.config import OverlayConfig
from repro.core.message import Address
from repro.core.network import OverlayNetwork
from repro.net.backbone import FWD, FiberLink
from repro.net.internet import HEADER_BYTES, Internet
from repro.net.loss import (
    BernoulliLoss,
    CompositeLoss,
    GilbertElliottLoss,
    LossModel,
    NoLoss,
)
from repro.sim.events import Simulator
from repro.sim.rng import RngRegistry
from repro.vector import MissingNumpyError

np = pytest.importorskip("numpy")

WINDOW = 0.00025


# ------------------------------------------------------- configuration


def test_vectorized_requires_columnar():
    overlay = build_overlay()  # plain packet scenario builder
    with pytest.raises(ValueError, match="columnar_vectorized"):
        OverlayNetwork(
            overlay.internet,
            ["n00", "n01"],
            [("n00", "n01")],
            OverlayConfig(columnar_vectorized=True),
        )


def test_vectorized_requires_positive_window():
    with pytest.raises(ValueError, match="columnar_window > 0"):
        build_overlay(config=OverlayConfig(
            columnar=True, columnar_window=0.0, columnar_vectorized=True))


def test_vectorized_without_numpy_raises_clear_error(monkeypatch):
    monkeypatch.setattr(vector, "_numpy", None)
    monkeypatch.setattr(vector, "_probed", True)
    with pytest.raises(MissingNumpyError, match=r"repro\[fast\]"):
        build_overlay(config=OverlayConfig(
            columnar=True, columnar_window=WINDOW, columnar_vectorized=True))


def test_require_numpy_returns_module():
    assert vector.require_numpy("test") is np


# ------------------------------------------------- batched loss draws


def _twin_rngs(seed=1234):
    return random.Random(seed), random.Random(seed)


def _twin_gens(seed=99):
    return np.random.default_rng(seed), np.random.default_rng(seed)


def test_ge_batch_draws_stream_positions():
    """The burst process advances on the scalar stream exactly as one
    ``should_drop`` at the same instant would (the documented amount);
    the k per-packet verdicts come off the vector stream."""
    k = 32
    ge = GilbertElliottLoss(mean_good=0.5, mean_bad=0.05,
                            good_loss=0.1, bad_loss=0.9)
    twin = GilbertElliottLoss(mean_good=0.5, mean_bad=0.05,
                              good_loss=0.1, bad_loss=0.9)
    rng, rng_ref = _twin_rngs()
    gen, gen_ref = _twin_gens()
    lost = ge.batch_draws(5.0, rng, k, gen, np)
    # Scalar stream: advanced by exactly one `_advance(now)` — no
    # per-packet draws were consumed from it.
    twin._advance(5.0, rng_ref)
    assert rng.getstate() == rng_ref.getstate()
    assert twin._in_bad == ge._in_bad
    # Vector stream: exactly one k-wide uniform draw.
    p = ge.bad_loss if ge._in_bad else ge.good_loss
    expected = gen_ref.random(k) < p
    assert lost.shape == (k,)
    assert (lost == expected).all()
    assert gen.random() == gen_ref.random()  # streams still aligned


def test_bernoulli_batch_draws_consume_no_scalar_randomness():
    k = 16
    model = BernoulliLoss(0.25)
    rng, rng_ref = _twin_rngs()
    gen, gen_ref = _twin_gens()
    lost = model.batch_draws(0.0, rng, k, gen, np)
    assert rng.getstate() == rng_ref.getstate()
    assert (lost == (gen_ref.random(k) < 0.25)).all()


def test_zero_rate_batch_draws_consume_nothing():
    rng, rng_ref = _twin_rngs()
    gen, gen_ref = _twin_gens()
    for model in (NoLoss(), BernoulliLoss(0.0)):
        lost = model.batch_draws(0.0, rng, 8, gen, np)
        assert not lost.any()
    assert rng.getstate() == rng_ref.getstate()
    assert gen.random() == gen_ref.random()


def test_composite_batch_draws_or_children():
    k = 64
    comp = CompositeLoss(BernoulliLoss(0.3),
                         GilbertElliottLoss(mean_good=0.5, mean_bad=0.5,
                                            good_loss=0.2, bad_loss=0.8))
    twin = CompositeLoss(BernoulliLoss(0.3),
                         GilbertElliottLoss(mean_good=0.5, mean_bad=0.5,
                                            good_loss=0.2, bad_loss=0.8))
    rng, rng_ref = _twin_rngs()
    gen, gen_ref = _twin_gens()
    lost = comp.batch_draws(2.0, rng, k, gen, np)
    expected = np.zeros(k, dtype=bool)
    for child in twin.models:
        expected |= child.batch_draws(2.0, rng_ref, k, gen_ref, np)
    assert (lost == expected).all()
    assert rng.getstate() == rng_ref.getstate()


def test_unknown_loss_subclass_is_unbatchable():
    class Weird(LossModel):
        def should_drop(self, now, rng):
            return False

    rng = random.Random(0)
    gen = np.random.default_rng(0)
    assert Weird().batch_draws(0.0, rng, 4, gen, np) is None
    assert CompositeLoss(Weird(), BernoulliLoss(0.1)).batch_draws(
        0.0, rng, 4, gen, np) is None


# ----------------------------------------------------- batch_traverse


def _reference_recurrence(link, now, wires, lost):
    """The scalar per-packet queueing recurrence, spelled out."""
    busy = link._busy_until[FWD]
    arrivals, dropped = [], []
    for wire, was_lost in zip(wires, lost):
        if was_lost:
            arrivals.append(None)
            dropped.append(True)
            continue
        tx = wire * 8.0 / link.capacity_bps
        qd = max(0.0, busy - now)
        if qd > link.MAX_QUEUE_DELAY:
            arrivals.append(None)
            dropped.append(True)
            continue
        busy = now + qd + tx
        arrivals.append(now + qd + tx + link.delay)
        dropped.append(False)
    return arrivals, dropped, busy


@pytest.mark.parametrize("lost_pattern", [
    [False] * 6,
    [False, True, False, True, True, False],
    [True] * 6,
])
def test_batch_traverse_matches_scalar_recurrence(lost_pattern):
    link = FiberLink("f", delay=0.010, capacity_bps=8_000_000.0)
    wires = np.array([1500.0, 300.0, 9000.0, 1500.0, 64.0, 40000.0])
    lost = np.array(lost_pattern)
    gen = np.random.default_rng(7)
    arrivals, dropped = link.batch_traverse(1.0, wires, FWD, gen, lost, np)
    ref = FiberLink("f", delay=0.010, capacity_bps=8_000_000.0)
    ref_arrivals, ref_dropped, ref_busy = _reference_recurrence(
        ref, 1.0, wires, lost)
    assert list(dropped) == ref_dropped
    for got, want in zip(arrivals, ref_arrivals):
        if want is not None:
            assert got == pytest.approx(want, abs=1e-12)
    assert link._busy_until[FWD] == pytest.approx(ref_busy, abs=1e-12)
    n_dropped = sum(ref_dropped)
    assert link.packets_dropped == n_dropped
    assert link.packets_carried == len(wires) - n_dropped
    assert link.bytes_carried == int(
        wires.sum() - wires[np.array(ref_dropped)].sum())


def test_batch_traverse_overflow_falls_back_to_exact_recurrence():
    # 8 Mbit/s, 0.2 s max queue => 200 KB of backlog overflows; these
    # frames serialize 0.1 s each, so the 4th and later overflow.
    link = FiberLink("f", delay=0.001, capacity_bps=8_000_000.0)
    wires = np.full(6, 100_000.0)
    lost = np.zeros(6, dtype=bool)
    gen = np.random.default_rng(7)
    arrivals, dropped = link.batch_traverse(0.0, wires, FWD, gen, lost, np)
    ref = FiberLink("f", delay=0.001, capacity_bps=8_000_000.0)
    ref_arrivals, ref_dropped, ref_busy = _reference_recurrence(
        ref, 0.0, wires, lost)
    assert any(ref_dropped), "scenario must actually overflow"
    assert list(dropped) == ref_dropped
    for got, want in zip(arrivals, ref_arrivals):
        if want is not None:
            assert got == pytest.approx(want, abs=1e-12)
    # Overflowed packets must not have advanced the busy horizon.
    assert link._busy_until[FWD] == pytest.approx(ref_busy, abs=1e-12)


def test_batch_traverse_no_capacity_and_jitter_stream():
    link = FiberLink("f", delay=0.010, jitter=0.002)
    gen, gen_ref = _twin_gens()
    wires = np.full(5, 1500.0)
    lost = np.zeros(5, dtype=bool)
    arrivals, dropped = link.batch_traverse(2.0, wires, FWD, gen, lost, np)
    expected = 2.0 + link.delay + gen_ref.uniform(0.0, 0.002, 5)
    assert not dropped.any()
    assert np.allclose(arrivals, expected)


# ------------------------------------------------ path fast-forward


def _line_internet(n_fibers=3, *, window=WINDOW, capacity_mid=False,
                   convergence_delay=10.0):
    """A host at each end of a chain of 10 ms fibers — the smallest
    topology where the vectorized tier's path fast-forward settles a
    whole multi-fiber transit as one batch."""
    sim = Simulator(columnar=True)
    rngs = RngRegistry(4242)
    inet = Internet(sim, rngs)
    isp = inet.add_isp("line", convergence_delay=convergence_delay)
    for i in range(n_fibers):
        isp.add_link(
            f"r{i}", f"r{i + 1}", 0.010,
            8_000_000.0 if capacity_mid and i == 1 else None,
        )
    inet.add_host("a", access_delay=0.0)
    inet.add_host("b", access_delay=0.0)
    inet.attach("a", "line", "r0")
    inet.attach("b", "line", f"r{n_fibers}")
    inet.columnar_window = window
    inet.enable_vectorized()
    return sim, inet, isp


class _Sink:
    def __init__(self, sim):
        self.sim = sim
        self.delivered = []
        self.dropped = []

    def deliver(self, datagram):
        self.delivered.append((datagram, self.sim.now))

    def drop(self, datagram, reason):
        self.dropped.append((datagram, reason))


def test_path_profile_resolves_multifiber_transit():
    __, inet, isp = _line_internet(3)
    profile = inet._path_profile(isp, "r0", "r3")
    assert profile is not None
    assert profile.n_hops == 3
    assert profile.total_delay == pytest.approx(0.030)
    assert profile.trivial
    assert profile.jitters is None
    # Loss on a fiber keeps the path profilable but not trivial.
    isp.link_between("r1", "r2").loss = BernoulliLoss(0.1)
    lossy = inet._path_profile(isp, "r0", "r3")
    assert lossy is not None and not lossy.trivial
    # Jitter anywhere materializes the per-fiber jitter column.
    isp.link_between("r2", "r3").jitter = 0.001
    jittery = inet._path_profile(isp, "r0", "r3")
    assert jittery.jitters == (0.0, 0.0, 0.001)
    assert not jittery.trivial


def test_path_profile_rejects_capacity_fiber():
    __, inet, isp = _line_internet(3, capacity_mid=True)
    assert inet._path_profile(isp, "r0", "r3") is None


def test_path_fast_forward_delivers_whole_chain():
    sim, inet, isp = _line_internet(3)
    sink = _Sink(sim)
    for __ in range(5):
        inet.send("a", "b", "payload", 1200, "line", sink.deliver, sink.drop)
    sim.run(until=1.0)
    assert len(sink.delivered) == 5
    assert not sink.dropped
    for __, at in sink.delivered:
        # Sum of the fiber delays, quantized up to the window grid.
        assert 0.030 <= at <= 0.030 + 3 * WINDOW
    for i in range(3):
        link = isp.link_between(f"r{i}", f"r{i + 1}")
        assert link.packets_carried == 5
        assert link.packets_dropped == 0
        assert link.bytes_carried == 5 * (1200 + HEADER_BYTES)
    epoch, profile = inet._vec_path_cache[(id(isp), "r0", "r3")]
    assert epoch == isp.tables_epoch
    assert profile is not None and profile.n_hops == 3


def test_path_fast_forward_falls_back_on_capacity():
    sim, inet, isp = _line_internet(3, capacity_mid=True)
    sink = _Sink(sim)
    for __ in range(5):
        inet.send("a", "b", "payload", 1200, "line", sink.deliver, sink.drop)
    sim.run(until=1.0)
    assert len(sink.delivered) == 5
    assert not sink.dropped
    # The capacity fiber disqualified the transit: the cache pins the
    # negative verdict and the per-(link, direction) machinery carried
    # the frames (serialization order preserved).
    assert inet._vec_path_cache[(id(isp), "r0", "r3")][1] is None
    assert isp.link_between("r1", "r2").packets_carried == 5


def test_trivial_path_demoted_by_live_loss_swap():
    sim, inet, isp = _line_internet(3)
    sink = _Sink(sim)
    for __ in range(4):
        inet.send("a", "b", "x", 1200, "line", sink.deliver, sink.drop)
    sim.run(until=0.5)
    assert len(sink.delivered) == 4
    # Swap a total-loss model onto the middle fiber. No reconvergence:
    # the cached profile (resolved trivial) stays epoch-valid, so only
    # the settle-time live check can notice.
    isp.link_between("r1", "r2").loss = BernoulliLoss(1.0)
    for __ in range(10):
        inet.send("a", "b", "x", 1200, "line", sink.deliver, sink.drop)
    sim.run(until=1.0)
    assert len(sink.delivered) == 4
    assert len(sink.dropped) == 10
    assert all(reason == "link-loss" for __, reason in sink.dropped)
    # First-loss attribution: the first fiber carried the batch, the
    # lossy fiber ate it, the last fiber never saw it.
    assert isp.link_between("r0", "r1").packets_carried == 14
    assert isp.link_between("r1", "r2").packets_dropped == 10
    assert isp.link_between("r2", "r3").packets_carried == 4


def test_trivial_path_demoted_by_fiber_failure():
    sim, inet, isp = _line_internet(3)
    sink = _Sink(sim)
    for __ in range(4):
        inet.send("a", "b", "x", 1200, "line", sink.deliver, sink.drop)
    sim.run(until=0.5)
    epoch_before = isp.tables_epoch
    isp.fail_link("r1", "r2")
    # Stale-table window (convergence_delay is 10 s): the cached
    # profile still routes into the cut fiber and frames die there,
    # exactly as a hop-by-hop walk over the same stale tables would.
    assert isp.tables_epoch == epoch_before
    for __ in range(5):
        inet.send("a", "b", "x", 1200, "line", sink.deliver, sink.drop)
    sim.run(until=1.0)
    assert len(sink.delivered) == 4
    assert len(sink.dropped) == 5
    assert all(reason == "link-loss" for __, reason in sink.dropped)
    assert isp.link_between("r1", "r2").packets_dropped == 5


def test_path_cache_invalidated_by_reconvergence():
    sim = Simulator(columnar=True)
    rngs = RngRegistry(4242)
    inet = Internet(sim, rngs)
    isp = inet.add_isp("sq", convergence_delay=0.05)
    # Fast two-fiber route r0-r1-r3 (20 ms); slow detour r0-r2-r3
    # (100 ms) that Dijkstra only takes once the fast route is cut.
    isp.add_link("r0", "r1", 0.010)
    isp.add_link("r1", "r3", 0.010)
    isp.add_link("r0", "r2", 0.050)
    isp.add_link("r2", "r3", 0.050)
    inet.add_host("a", access_delay=0.0)
    inet.add_host("b", access_delay=0.0)
    inet.attach("a", "sq", "r0")
    inet.attach("b", "sq", "r3")
    inet.columnar_window = WINDOW
    inet.enable_vectorized()
    sink = _Sink(sim)
    for __ in range(3):
        inet.send("a", "b", "x", 1200, "sq", sink.deliver, sink.drop)
    sim.run(until=0.3)
    assert len(sink.delivered) == 3
    for __, at in sink.delivered:
        assert 0.020 <= at <= 0.020 + 3 * WINDOW
    epoch_before = isp.tables_epoch
    assert inet._vec_path_cache[(id(isp), "r0", "r3")][1].n_hops == 2
    isp.fail_link("r1", "r3")
    # Run past convergence_delay: the reconvergence bumps tables_epoch,
    # which invalidates the cached fast-route profile.
    sim.run(until=0.5)
    assert isp.tables_epoch > epoch_before
    sent_at = sim.now
    for __ in range(3):
        inet.send("a", "b", "x", 1200, "sq", sink.deliver, sink.drop)
    sim.run(until=1.0)
    assert len(sink.delivered) == 6
    assert not sink.dropped
    for __, at in sink.delivered[3:]:
        assert 0.100 - 1e-9 <= at - sent_at <= 0.100 + 3 * WINDOW
    __, profile = inet._vec_path_cache[(id(isp), "r0", "r3")]
    assert profile.n_hops == 2
    assert profile.total_delay == pytest.approx(0.100)


def test_channel_fast_lane_settles_trivial_sends():
    """A send through a primed channel with a trivial profile settles
    inline — straight into the bulk-delivery batch, with per-fiber
    counters — without touching the path-group machinery."""
    sim, inet, isp = _line_internet(3)
    sink = _Sink(sim)
    chan = inet.channel("a", "b", "line")
    inet.prime_path(chan)
    assert chan._ff is not None
    assert chan._ff[1].trivial

    def burst():
        for __ in range(5):
            inet.send_via(chan, "x", 1200, sink.deliver, sink.drop)

    sim.schedule(0.1, burst)
    sim.run(until=0.5)
    assert len(sink.delivered) == 5
    for __, at in sink.delivered:
        assert 0.130 - 1e-9 <= at <= 0.130 + 3 * WINDOW
    for pair in (("r0", "r1"), ("r1", "r2"), ("r2", "r3")):
        link = isp.link_between(*pair)
        assert link.packets_carried == 5
        assert link.bytes_carried == 5 * (1200 + HEADER_BYTES)


def test_channel_fast_lane_demoted_by_loss_swap():
    """The channel lane re-checks fiber liveness per send: a loss model
    swapped onto a mid-path fiber demotes the send to the ordinary
    fast-forward path, which drops it there."""
    sim, inet, isp = _line_internet(3)
    sink = _Sink(sim)
    chan = inet.channel("a", "b", "line")
    inet.prime_path(chan)

    def swap_then_send():
        isp.link_between("r1", "r2").loss = BernoulliLoss(1.0)
        for __ in range(6):
            inet.send_via(chan, "x", 1200, sink.deliver, sink.drop)

    sim.schedule(0.1, swap_then_send)
    sim.run(until=0.5)
    assert not sink.delivered
    assert len(sink.dropped) == 6
    assert all(reason == "link-loss" for __, reason in sink.dropped)
    assert isp.link_between("r0", "r1").packets_carried == 6
    assert isp.link_between("r1", "r2").packets_dropped == 6
    assert isp.link_between("r2", "r3").packets_carried == 0


# ----------------------------------------- exact mode stays exact


def test_window_zero_byte_identity():
    """``columnar_window=0`` is still the byte-identical exact mode with
    all the vectorized machinery compiled in but disarmed."""
    traces = []
    for config in (None, OverlayConfig(columnar=True)):
        overlay = build_overlay(lossy=True, config=config)
        sim = overlay.sim
        overlay.warm_up(2.0)
        for src, sink in (("n00", "n08"), ("n05", "n13")):
            overlay.client(sink, 7)
            CbrSource(sim, overlay.client(src), Address(sink, 7),
                      rate_pps=20.0, duration=3.0).start()
        sim.run(until=sim.now + 4.0)
        traces.append(overlay.trace)
    assert_identical(
        traces[1], traces[0],
        header="columnar_window=0 must remain byte-identical to the "
        "per-packet path even with the vectorized tier present",
    )


# --------------------------------------------- statistical contract


def test_vector_calibration_loss_free():
    result = run_vector_calibration(run_time=5.0)
    result.check()
    assert result.max_delivery_delta <= DELIVERY_TOL
    assert result.max_latency_delta <= LATENCY_TOL
    # The whole point: bulk settlement eliminates per-packet events.
    assert result.vectorized_wall_events < result.exact_wall_events


def test_vectorized_counters_conserved():
    """Every datagram sent through the vectorized tier is accounted:
    delivered or dropped, never lost in a batch."""
    overlay = build_overlay(lossy=True, config=OverlayConfig(
        columnar=True, columnar_window=WINDOW, columnar_vectorized=True))
    sim = overlay.sim
    overlay.warm_up(2.0)
    for src, sink in (("n00", "n08"), ("n03", "n11")):
        overlay.client(sink, 7)
        CbrSource(sim, overlay.client(src), Address(sink, 7),
                  rate_pps=20.0, duration=4.0).start()
    sim.run(until=sim.now + 6.0)
    # Drain in-flight datagrams (hello traffic is always in flight at
    # an arbitrary cutoff instant) so the books must balance exactly.
    overlay.quiesce()
    counters = overlay.internet.counters
    sent = counters.get("datagrams-sent")
    delivered = counters.get("datagrams-delivered")
    dropped = sum(value for name, value in counters.as_dict().items()
                  if name.startswith("drop:"))
    assert sent > 0
    assert sent == delivered + dropped


def _stat_leg(vectorized, n, chord, loss_kind, window, spaced=False):
    sim = Simulator(columnar=True)
    rngs = RngRegistry(2024)
    inet = Internet(sim, rngs)
    domain = inet.add_isp("isp", convergence_delay=10.0)
    edges = sorted(
        {tuple(sorted((i, (i + d) % n))) for i in range(n) for d in (1, chord)}
    )
    for i in range(n):
        domain.add_router(f"r{i}")
    for k, (a, b) in enumerate(edges):
        model = None
        if loss_kind and k % 3 == 0:
            if loss_kind == 1:
                model = GilbertElliottLoss(mean_good=2.0, mean_bad=0.05,
                                           good_loss=0.0, bad_loss=1.0)
            elif loss_kind == 2:
                model = BernoulliLoss(0.02)
            else:
                model = CompositeLoss(
                    BernoulliLoss(0.01),
                    GilbertElliottLoss(mean_good=2.0, mean_bad=0.05,
                                       good_loss=0.0, bad_loss=1.0),
                )
        domain.add_link(f"r{a}", f"r{b}", 0.010, None, model)
    for i in range(n):
        inet.add_host(f"h{i}", access_delay=0.0)
        inet.attach(f"h{i}", "isp", f"r{i}")
    if spaced:
        # Overlay neighbors 2-3 ring steps apart: every overlay link
        # spans a multi-fiber underlay transit, so the comparison
        # exercises the path fast-forward, not just single-crossing
        # batches. Spacings 2 and 3 are coprime — connected for any n.
        olinks = sorted(
            {tuple(sorted((i, (i + s) % n))) for i in range(n) for s in (2, 3)}
        )
    else:
        olinks = edges
    overlay = OverlayNetwork(
        inet,
        [f"h{i}" for i in range(n)],
        [(f"h{a}", f"h{b}") for a, b in olinks],
        OverlayConfig(columnar=True, columnar_window=window,
                      columnar_vectorized=vectorized),
    )
    overlay.warm_up(2.0)
    start = sim.now
    flows = [(src, sink) for src, sink in
             ((0, n // 2), (1, (1 + n // 2) % n), (3, (3 * chord) % n))
             if src != sink]
    sources, registered = [], set()
    for src, sink in flows:
        if sink not in registered:
            registered.add(sink)
            overlay.client(f"h{sink}", 7)
        sources.append(CbrSource(
            sim, overlay.client(f"h{src}"), Address(f"h{sink}", 7),
            rate_pps=20.0, duration=6.0,
        ).start())
    sim.run(until=start + 7.0)
    return {
        source.flow: flow_stats(overlay.trace, source.flow,
                                f"h{sink}:7", after=start)
        for source, (__, sink) in zip(sources, flows)
    }


@given(
    n=st.integers(min_value=8, max_value=12),
    chord=st.integers(min_value=2, max_value=4),
    loss_kind=st.integers(min_value=0, max_value=3),
    window=st.sampled_from([0.00025, 0.0005]),
    spaced=st.booleans(),
)
@settings(max_examples=6, deadline=None, derandomize=True,
          suppress_health_check=[HealthCheck.too_slow])
def test_vectorized_matches_exact_statistically(
        n, chord, loss_kind, window, spaced):
    """Property: on random ring+chord meshes with mixed loss stacks the
    vectorized tier stays within the documented calibration tolerances
    of the exact columnar run.

    Delivery holds unconditionally. Latency holds at the tight
    calibration tolerance whenever routing is deterministic (loss-free:
    both legs see identical hello streams, so identical routes); under
    loss the two legs sample *different* loss realizations, so the
    adaptive control plane may legitimately settle on a different
    near-equal-cost route — the bound widens by one underlay hop
    (10 ms fiber + window quantization) to cover exactly that. The
    tight lossy latency bound is enforced on the fixed calibration
    mesh, where routes are stable (``run_vector_calibration``).

    With ``spaced`` set, the overlay links span multi-fiber underlay
    transits, so the comparison covers the path fast-forward; its
    alternate routes differ by up to two fibers, widening the lossy
    latency allowance accordingly."""
    exact = _stat_leg(False, n, chord, loss_kind, window, spaced)
    vectorized = _stat_leg(True, n, chord, loss_kind, window, spaced)
    delivery_tol = DELIVERY_TOL_LOSSY if loss_kind else DELIVERY_TOL
    latency_tol = LATENCY_TOL if loss_kind == 0 else (
        LATENCY_TOL + (0.020 if spaced else 0.010) + 2 * window)
    for flow, exact_stats in exact.items():
        vec_stats = vectorized[flow]
        assert abs(vec_stats.delivery_ratio
                   - exact_stats.delivery_ratio) <= delivery_tol, (
            flow, exact_stats, vec_stats)
        assert abs(vec_stats.latency.mean
                   - exact_stats.latency.mean) <= latency_tol, (
            flow, exact_stats, vec_stats)
