"""Frame authentication (Sec IV-B): only authorized overlay nodes can
speak on the overlay; compromised-but-valid nodes still pass — which is
why redundant dissemination and fair scheduling exist on top."""

from repro.core.message import Address, Frame, ServiceSpec
from repro.core.network import OverlayNetwork
from repro.net.topologies import triangle_internet
from repro.security.adversary import Blackhole
from repro.security.crypto import AuthToken, KeyStore, _Signer
from repro.sim.events import Simulator
from repro.sim.rng import RngRegistry


def _authed_triangle(seed=901):
    sim = Simulator()
    rngs = RngRegistry(seed)
    internet = triangle_internet(sim, rngs)
    keystore = KeyStore()
    overlay = OverlayNetwork(
        internet, ["hx", "hy", "hz"],
        [("hx", "hy"), ("hy", "hz"), ("hx", "hz")],
        keystore=keystore,
    )
    overlay.warm_up(2.0)
    return sim, overlay, keystore


def test_authenticated_overlay_converges_and_delivers():
    sim, overlay, __ = _authed_triangle()
    assert overlay.converged()
    got = []
    overlay.client("hz", 7, on_message=got.append)
    overlay.client("hx").send(Address("hz", 7))
    sim.run(until=sim.now + 1.0)
    assert len(got) == 1
    assert overlay.counters.get("auth-rejected") == 0


def test_unsigned_injection_is_rejected():
    """An off-overlay attacker who reaches a daemon cannot inject."""
    sim, overlay, __ = _authed_triangle(902)
    node = overlay.nodes["hz"]
    forged = Frame(proto="control", ftype="lsu", src_node="hx", dst_node="hz",
                   info={"origin": "hx", "seq": 999, "costs": {}})
    node.receive_frame(forged)
    assert overlay.counters.get("auth-rejected") == 1
    assert node.topo_db.seq("hx") != 999


def test_forged_signature_is_rejected():
    """A fabricated signer object for a real identity does not verify."""
    sim, overlay, __ = _authed_triangle(903)
    node = overlay.nodes["hz"]
    fake_token = AuthToken(_Signer("hx"), ("control", "lsu", 0))
    forged = Frame(proto="control", ftype="lsu", src_node="hx", dst_node="hz",
                   info={"origin": "hx", "seq": 999, "costs": {}},
                   auth=fake_token)
    node.receive_frame(forged)
    assert overlay.counters.get("auth-rejected") == 1


def test_stolen_token_does_not_transfer_to_other_content():
    """Replaying node hx's hello signature on an LSU fails (the token
    binds to the frame's content)."""
    sim, overlay, keystore = _authed_triangle(904)
    node = overlay.nodes["hz"]
    stolen = keystore.sign("hx", ("control", "hello", 0))
    forged = Frame(proto="control", ftype="lsu", src_node="hx", dst_node="hz",
                   info={"origin": "hx", "seq": 999, "costs": {}}, auth=stolen)
    node.receive_frame(forged)
    assert overlay.counters.get("auth-rejected") == 1


def test_identity_mismatch_rejected():
    """A valid token by hy cannot authenticate a frame claiming hx."""
    sim, overlay, keystore = _authed_triangle(905)
    node = overlay.nodes["hz"]
    token = keystore.sign("hy", ("control", "lsu", 0))
    forged = Frame(proto="control", ftype="lsu", src_node="hx", dst_node="hz",
                   info={"origin": "hx", "seq": 999, "costs": {}}, auth=token)
    node.receive_frame(forged)
    assert overlay.counters.get("auth-rejected") == 1


def test_compromised_node_passes_authentication():
    """The paper's key point: authentication is NOT sufficient against a
    compromised node — its frames verify fine while it blackholes."""
    sim, overlay, __ = _authed_triangle(906)
    overlay.compromise("hy", Blackhole())
    # Force the hx->hz route through hy.
    overlay.internet.isps["tri"].fail_link("x", "z")
    sim.run(until=sim.now + 8.0)
    got = []
    overlay.client("hz", 7, on_message=got.append)
    overlay.client("hx").send(Address("hz", 7))
    sim.run(until=sim.now + 1.0)
    assert got == []  # the blackhole worked despite authentication
    assert overlay.counters.get("auth-rejected") == 0
    # ...and redundant dissemination still defeats it.
    from repro.core.message import ROUTING_FLOOD

    overlay.client("hx").send(Address("hz", 7),
                              service=ServiceSpec(routing=ROUTING_FLOOD))
    sim.run(until=sim.now + 1.0)
    assert len(got) == 1
