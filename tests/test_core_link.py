"""Overlay link monitoring: hellos, failure detection, carrier switching."""

import pytest

from repro.core.config import OverlayConfig
from repro.net.loss import ScheduledOutages
from tests.conftest import make_two_node_line


def _only_link(node):
    return next(iter(node.links.values()))


def test_links_come_up_after_hellos():
    scn = make_two_node_line(seed=1)
    for node in scn.overlay.nodes.values():
        for link in node.links.values():
            assert link.up


def test_latency_estimate_converges_to_hop_delay():
    scn = make_two_node_line(seed=1, hop_delay=0.010)
    link = _only_link(scn.overlay.nodes["h0"])
    assert link.latency_est == pytest.approx(0.010, abs=0.001)


def test_cost_reflects_loss_penalty():
    lossless = make_two_node_line(seed=1)
    lossy = make_two_node_line(seed=1, loss_rate=0.2, config=OverlayConfig())
    lossy.run_for(10.0)
    clean_cost = _only_link(lossless.overlay.nodes["h0"]).cost()
    lossy_cost = _only_link(lossy.overlay.nodes["h0"]).cost()
    assert lossy_cost > 1.5 * clean_cost


def test_down_detection_within_subsecond(sim=None):
    scn = make_two_node_line(seed=2)
    link = _only_link(scn.overlay.nodes["h0"])
    assert link.up
    scn.internet.isps["line"].fail_link("r0", "r1")
    fail_time = scn.sim.now
    scn.run_for(2.0)
    assert not link.up
    # Detection = miss_threshold * hello_interval + one check tick.
    config = scn.overlay.config
    budget = config.hello_interval * (config.miss_threshold + 2)
    # The link flipped down within the sub-second budget.
    down_counter = scn.overlay.counters.get("link-down")
    assert down_counter >= 2  # both sides noticed
    assert budget < 1.0


def test_link_recovers_after_repair():
    scn = make_two_node_line(seed=3)
    domain = scn.internet.isps["line"]
    link = _only_link(scn.overlay.nodes["h0"])
    domain.fail_link("r0", "r1")
    scn.run_for(2.0)
    assert not link.up
    domain.repair_link("r0", "r1")
    scn.run_for(domain.convergence_delay + 2.0)
    assert link.up


def test_no_carrier_switch_with_single_carrier():
    from repro.core.network import OverlayNetwork
    from repro.net.topologies import line_internet
    from repro.sim.events import Simulator
    from repro.sim.rng import RngRegistry

    sim = Simulator()
    rngs = RngRegistry(4)
    internet = line_internet(sim, rngs, n_hops=1)
    overlay = OverlayNetwork(
        internet, ["h0", "h1"], [("h0", "h1")],
        carriers={frozenset(("h0", "h1")): ["line"]},
    )
    overlay.warm_up(2.0)
    domain = internet.isps["line"]
    link = _only_link(overlay.nodes["h0"])
    domain.fail_link("r0", "r1")
    sim.run(until=sim.now + 5.0)
    assert link.switch_count == 0  # nothing to switch to


def test_switching_to_native_on_shared_fiber_does_not_help():
    """The line's native carrier rides the same fiber, so carrier
    switching alone cannot revive the link — only underlay repair can."""
    scn = make_two_node_line(seed=4)
    domain = scn.internet.isps["line"]
    link = _only_link(scn.overlay.nodes["h0"])
    domain.fail_link("r0", "r1")
    scn.run_for(5.0)
    assert link.switch_count >= 1
    assert not link.up


def test_carrier_switch_on_persistent_outage():
    """Multihoming: when the current carrier dies, hellos move to the
    next one and the link comes back without the underlay healing."""
    from repro.analysis.scenarios import continental_scenario

    scn = continental_scenario(seed=5)
    node = scn.overlay.nodes["site-NYC"]
    link = node.links["site-WAS"]
    assert link.carrier == "ispA"
    # Kill ispA's NYC-WAS fiber; ispA reconverges only after 10 s, but
    # the overlay link should hop to ispB's on-net path much sooner.
    scn.internet.fail_fiber("ispA", "NYC", "WAS")
    scn.run_for(5.0)
    assert link.switch_count >= 1
    assert link.up
    assert link.carrier != "ispA" or scn.sim.now > 100  # switched


def test_carriers_validated_at_construction():
    import pytest
    from repro.core.link import OverlayLink
    from repro.sim.events import Simulator

    with pytest.raises(ValueError):
        OverlayLink(
            Simulator(), None, "a", "a", "b", "b", [], 0,
            OverlayConfig(), lambda link: None,
        )


def test_transmit_without_wiring_raises():
    import pytest
    from repro.core.link import OverlayLink
    from repro.core.message import Frame
    from repro.sim.events import Simulator

    link = OverlayLink(
        Simulator(), None, "a", "a", "b", "b", ["x"], 0,
        OverlayConfig(), lambda link: None,
    )
    with pytest.raises(RuntimeError):
        link.transmit(Frame(proto="control", ftype="hello", src_node="a", dst_node="b"))
