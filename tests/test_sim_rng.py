"""Unit tests for named seeded RNG streams."""

from repro.sim.rng import RngRegistry, derive_seed


def test_same_name_returns_same_stream():
    rngs = RngRegistry(1)
    assert rngs.stream("a") is rngs.stream("a")


def test_different_names_draw_independently():
    rngs = RngRegistry(1)
    a = [rngs.stream("a").random() for __ in range(5)]
    b = [rngs.stream("b").random() for __ in range(5)]
    assert a != b


def test_same_seed_reproduces_exactly():
    draws1 = [RngRegistry(42).stream("x").random() for __ in range(1)]
    draws2 = [RngRegistry(42).stream("x").random() for __ in range(1)]
    assert draws1 == draws2


def test_different_master_seeds_differ():
    a = RngRegistry(1).stream("x").random()
    b = RngRegistry(2).stream("x").random()
    assert a != b


def test_adding_stream_does_not_perturb_others():
    """The reason named streams exist: one component's draws must not
    depend on whether another component exists."""
    rngs1 = RngRegistry(7)
    first = [rngs1.stream("link").random() for __ in range(3)]

    rngs2 = RngRegistry(7)
    rngs2.stream("other-component").random()
    second = [rngs2.stream("link").random() for __ in range(3)]
    assert first == second


def test_derive_seed_is_stable():
    assert derive_seed(1, "x") == derive_seed(1, "x")
    assert derive_seed(1, "x") != derive_seed(1, "y")


def test_fork_creates_namespaced_registry():
    rngs = RngRegistry(3)
    child1 = rngs.fork("overlay-1")
    child2 = rngs.fork("overlay-2")
    assert child1.stream("x").random() != child2.stream("x").random()


def test_contains():
    rngs = RngRegistry(1)
    assert "a" not in rngs
    rngs.stream("a")
    assert "a" in rngs
