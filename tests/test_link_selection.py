"""OverlayLink carrier-selection logic, exercised in isolation, plus
PacedSender and jitter mechanics."""

import random

import pytest

from repro.core.config import OverlayConfig
from repro.core.link import OverlayLink, SWITCH_HYSTERESIS
from repro.net.backbone import FWD, FiberLink
from repro.protocols.base import PacedSender
from repro.sim.events import Simulator


def _bare_link(carriers=("ispA", "ispB", "native")):
    sim = Simulator()
    link = OverlayLink(
        sim, None, "a", "a", "b", "b", list(carriers), 0,
        OverlayConfig(), lambda l: None,
    )
    return sim, link


def _hello(link, carrier, seq, ts, feedback=None):
    link.on_hello({
        "carrier": carrier, "seq": seq, "ts": ts,
        "feedback": feedback or {},
    })


class TestCarrierSelection:
    def test_link_comes_up_after_recover_threshold_hellos(self):
        sim, link = _bare_link()
        assert not link.up
        for i in range(3):
            sim.run(until=sim.now + 0.1)
            _hello(link, "ispA", i, sim.now - 0.01)
        assert link.up

    def test_switch_uses_peer_feedback_not_incoming_quality(self):
        """Loss is direction-specific: our incoming hellos may be clean
        while the peer reports our outgoing carrier as terrible."""
        sim, link = _bare_link()
        for i in range(10):
            sim.run(until=sim.now + 0.1)
            feedback = {"ispA": 0.9, "ispB": 0.0, "native": 0.0}
            for carrier in ("ispA", "ispB", "native"):
                _hello(link, carrier, i, sim.now - 0.01, feedback)
        sim.run(until=sim.now + 0.5)
        link._maybe_switch_carrier()
        assert link.carrier == "ispB"
        assert link.switch_count >= 1

    def test_no_switch_without_hysteresis_margin(self):
        sim, link = _bare_link()
        base = OverlayConfig().carrier_loss_switch
        for i in range(10):
            sim.run(until=sim.now + 0.1)
            # Current carrier slightly over threshold, alternative only
            # marginally better: stay put.
            feedback = {
                "ispA": base + 0.01,
                "ispB": base + 0.01 - SWITCH_HYSTERESIS / 2,
                "native": base + 0.01,
            }
            for carrier in ("ispA", "ispB", "native"):
                _hello(link, carrier, i, sim.now - 0.01, feedback)
        link._maybe_switch_carrier()
        assert link.carrier == "ispA"
        assert link.switch_count == 0

    def test_dead_current_carrier_switches_to_live_one(self):
        sim, link = _bare_link()
        for i in range(10):
            sim.run(until=sim.now + 0.1)
            _hello(link, "ispB", i, sim.now - 0.01)  # only ispB heard
        link._last_switch = -10.0
        link._maybe_switch_carrier()
        assert link.carrier == "ispB"

    def test_blind_round_robin_when_everything_is_silent(self):
        sim, link = _bare_link()
        sim.run(until=sim.now + 2.0)
        link._last_switch = -10.0
        link._maybe_switch_carrier()
        assert link.carrier == "ispB"  # probing the next candidate

    def test_switch_rate_limited(self):
        sim, link = _bare_link()
        sim.run(until=sim.now + 2.0)
        link._last_switch = sim.now  # just switched
        before = link.carrier_idx
        link._maybe_switch_carrier()
        assert link.carrier_idx == before

    def test_cost_requires_up_and_measurement(self):
        sim, link = _bare_link()
        assert link.cost() is None
        for i in range(3):
            sim.run(until=sim.now + 0.1)
            _hello(link, "ispA", i, sim.now - 0.012)
        cost = link.cost()
        assert cost == pytest.approx(0.012, rel=0.05)

    def test_stale_hello_seq_ignored(self):
        sim, link = _bare_link()
        sim.run(until=sim.now + 0.1)
        _hello(link, "ispA", 5, sim.now - 0.01)
        latency_after_first = link._rx["ispA"].latency_est
        _hello(link, "ispA", 3, sim.now - 0.5)  # old, huge latency
        assert link._rx["ispA"].latency_est == latency_after_first


class TestPacedSender:
    def test_serializes_at_capacity(self):
        sim = Simulator()
        sent = []
        queue = [100, 100, 100]  # bytes each

        def source():
            if not queue:
                return None
            size = queue.pop(0)
            return (size, lambda: sent.append(sim.now))

        pacer = PacedSender(sim, capacity_bps=8000.0, source=source)  # 1 kB/s
        pacer.kick()
        sim.run()
        assert sent == [pytest.approx(0.0), pytest.approx(0.1), pytest.approx(0.2)]

    def test_kick_while_busy_is_noop(self):
        sim = Simulator()
        sent = []
        queue = [1000]

        def source():
            if not queue:
                return None
            queue.pop()
            return (1000, lambda: sent.append(sim.now))

        pacer = PacedSender(sim, capacity_bps=8000.0, source=source)
        pacer.kick()
        pacer.kick()
        pacer.kick()
        sim.run()
        assert len(sent) == 1

    def test_uncapped_pacer_drains_everything_immediately(self):
        sim = Simulator()
        queue = list(range(5))
        sent = []

        def source():
            if not queue:
                return None
            queue.pop()
            return (1000, lambda: sent.append(sim.now))

        pacer = PacedSender(sim, capacity_bps=None, source=source)
        pacer.kick()
        sim.run()
        assert len(sent) == 5
        assert all(t == 0.0 for t in sent)


class TestJitterMechanics:
    def test_jitter_bounds_and_distribution(self):
        link = FiberLink("j", delay=0.010, jitter=0.005)
        rng = random.Random(1)
        arrivals = [link.traverse(0.0, 100, FWD, rng) for __ in range(2000)]
        assert min(arrivals) >= 0.010
        assert max(arrivals) <= 0.015
        mean = sum(arrivals) / len(arrivals)
        assert mean == pytest.approx(0.0125, abs=0.0005)

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            FiberLink("j", delay=0.01, jitter=-0.001)

    def test_jitter_can_reorder_packets(self):
        from repro.analysis.scenarios import line_scenario
        from repro.core.message import Address

        scn = line_scenario(2001, n_hops=1, jitter=0.015)
        got = []
        scn.overlay.client("h1", 7, on_message=lambda m: got.append(m.seq))
        tx = scn.overlay.client("h0")
        for __ in range(200):
            tx.send(Address("h1", 7))
            scn.run_for(0.002)
        scn.run_for(1.0)
        assert sorted(got) == list(range(200))  # lossless
        assert got != sorted(got), "15 ms jitter at 2 ms spacing must reorder"
