"""Dijkstra tests, including a networkx oracle over random graphs."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.alg.dijkstra import (
    dijkstra,
    extract_path,
    next_hops,
    path_cost,
    shortest_path,
    shortest_path_tree,
)
from repro.alg.graph import undirected


SQUARE = undirected(
    [("a", "b", 1.0), ("b", "c", 1.0), ("a", "d", 1.0), ("d", "c", 5.0)]
)


def test_shortest_path_simple():
    assert shortest_path(SQUARE, "a", "c") == ["a", "b", "c"]


def test_shortest_path_to_self():
    assert shortest_path(SQUARE, "a", "a") == ["a"]


def test_unreachable_returns_none():
    adj = {"a": {"b": 1.0}, "b": {"a": 1.0}, "z": {}}
    assert shortest_path(adj, "a", "z") is None


def test_unknown_source():
    dist, prev = dijkstra({"a": {}}, "missing")
    assert dist == {"missing": 0.0}
    assert prev == {}


def test_negative_weight_rejected():
    with pytest.raises(ValueError):
        dijkstra({"a": {"b": -1.0}, "b": {}}, "a")


def test_path_cost():
    assert path_cost(SQUARE, ["a", "d", "c"]) == 6.0


def test_shortest_path_tree_covers_reachable_nodes():
    paths = shortest_path_tree(SQUARE, "a")
    assert set(paths) == {"a", "b", "c", "d"}
    assert paths["c"] == ["a", "b", "c"]


def test_next_hops_point_along_shortest_paths():
    table = next_hops(SQUARE, "c")
    assert table["a"] == "b"
    assert table["b"] == "c"
    # d's direct edge to c costs 5; d-a-b-c costs 3.
    assert table["d"] == "a"


def test_next_hops_respects_asymmetric_weights():
    adj = {
        "a": {"b": 1.0, "c": 10.0},
        "b": {"c": 1.0},
        "c": {},
    }
    table = next_hops(adj, "c")
    assert table["a"] == "b"


def test_extract_path_missing_destination():
    __, prev = dijkstra(SQUARE, "a")
    assert extract_path(prev, "a", "nope") is None


@st.composite
def random_weighted_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    edges = []
    seen = set()
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    count = draw(st.integers(min_value=1, max_value=len(possible)))
    chosen = draw(st.permutations(possible))[:count]
    for i, j in chosen:
        if (i, j) in seen:
            continue
        seen.add((i, j))
        w = draw(st.floats(min_value=0.001, max_value=100.0))
        edges.append((i, j, w))
    return n, edges


@given(random_weighted_graphs())
@settings(max_examples=60, deadline=None)
def test_property_dijkstra_matches_networkx(graph):
    n, edges = graph
    adj = undirected(edges)
    for i in range(n):
        adj.setdefault(i, {})
    g = nx.Graph()
    g.add_nodes_from(range(n))
    g.add_weighted_edges_from(edges)
    dist, __ = dijkstra(adj, 0)
    nx_dist = nx.single_source_dijkstra_path_length(g, 0)
    assert set(dist) == set(nx_dist)
    for node, d in nx_dist.items():
        assert dist[node] == pytest.approx(d)


@given(random_weighted_graphs())
@settings(max_examples=40, deadline=None)
def test_property_next_hop_chains_reach_destination(graph):
    n, edges = graph
    adj = undirected(edges)
    for i in range(n):
        adj.setdefault(i, {})
    dist, __ = dijkstra(adj, n - 1)
    table = next_hops(adj, n - 1)
    for node in dist:
        current = node
        hops = 0
        while current != n - 1:
            current = table[current]
            hops += 1
            assert hops <= n, "next-hop chain loops"
