"""Cluster deployments (Sec II-D) and packet interception (Sec II-B)."""

import pytest

from repro.analysis.metrics import flow_stats
from repro.analysis.workloads import CbrSource
from repro.core.cluster import OverlayCluster
from repro.core.config import OverlayConfig
from repro.core.intercept import InterceptedSocket
from repro.core.message import Address, LINK_IT_PRIORITY, LINK_RELIABLE, ServiceSpec
from repro.net.topologies import line_internet, triangle_internet
from repro.sim.events import Simulator
from repro.sim.rng import RngRegistry
from tests.conftest import make_triangle_overlay


def _cluster(size, config=None, seed=701):
    sim = Simulator()
    rngs = RngRegistry(seed)
    internet = line_internet(sim, rngs, n_hops=1)
    cluster = OverlayCluster(
        internet, ["h0", "h1"], [("h0", "h1")], size=size, config=config
    )
    cluster.warm_up(2.0)
    return sim, internet, cluster


class TestCluster:
    def test_size_validation(self):
        sim = Simulator()
        internet = line_internet(sim, RngRegistry(1), n_hops=1)
        with pytest.raises(ValueError):
            OverlayCluster(internet, ["h0", "h1"], [("h0", "h1")], size=0)

    def test_basic_delivery_through_cluster(self):
        sim, __, cluster = _cluster(3)
        got = []
        cluster.client("h1", 7, on_message=got.append)
        tx = cluster.client("h0", 8)
        tx.send(Address("h1", 7), payload="via cluster")
        sim.run(until=sim.now + 1.0)
        assert len(got) == 1

    def test_flows_spread_across_members(self):
        sim, __, cluster = _cluster(3)
        cluster.client("h1", 7, on_message=lambda m: None)
        senders = [cluster.client("h0") for __ in range(12)]
        members_used = {
            cluster.member_for(s.address, Address("h1", 7)) for s in senders
        }
        assert len(members_used) >= 2, "hashing never spread the flows"

    def test_assignment_is_deterministic(self):
        sim, __, cluster = _cluster(3)
        a = cluster.client("h0", 10)
        assert cluster.member_for(a.address, Address("h1", 7)) == (
            cluster.member_for(a.address, Address("h1", 7))
        )

    def test_cluster_multiplies_forwarding_capacity(self):
        """Sec II-D's point: one machine saturates (2 Mbit/s access
        pacing vs ~4.9 Mbit/s offered); a 3-machine cluster carries the
        same offered load with each member under its own limit."""
        config = OverlayConfig(access_capacity_bps=2_000_000.0)
        offered_flows = 6
        rate = 100.0  # x ~1 kB wire -> ~0.82 Mbit/s per flow

        def run(size):
            sim, __, cluster = _cluster(size, config=config, seed=702)
            svc = ServiceSpec(link=LINK_IT_PRIORITY)
            sources = []
            per_member = {m: 0 for m in range(size)}
            quota = offered_flows // size
            for i in range(offered_flows):
                cluster.client("h1", 7 + i, on_message=lambda m: None)
                # Pick a sender whose flow hashes to a member with spare
                # quota (a deployment balances assignment the same way).
                while True:
                    tx = cluster.client("h0")
                    member = cluster.member_for(tx.address, Address("h1", 7 + i))
                    if per_member[member] < quota:
                        per_member[member] += 1
                        break
                    tx.close()
                sources.append(
                    CbrSource(sim, tx.endpoints[member], Address("h1", 7 + i),
                              rate_pps=rate, size=1000, service=svc).start()
                )
            sim.run(until=sim.now + 5.0)
            for source in sources:
                source.stop()
            sim.run(until=sim.now + 2.0)
            delivered = sum(
                len([r for m in cluster.members
                     for r in m.trace.records if r.flow == s.flow])
                for s in sources
            )
            offered = sum(s.sent for s in sources)
            return delivered / offered

        single = run(1)
        clustered = run(3)
        assert single < 0.75, single  # one machine drops under the load
        assert clustered > 0.95, clustered

    def test_group_membership_spans_members(self):
        sim, __, cluster = _cluster(2)
        got = []
        rx = cluster.client("h1", 7, on_message=got.append)
        rx.join("mcast:g")
        sim.run(until=sim.now + 1.0)
        tx = cluster.client("h0", 9)
        tx.send(Address("mcast:g", 7))
        sim.run(until=sim.now + 1.0)
        assert len(got) == 1

    def test_close_releases_all_members(self):
        sim, __, cluster = _cluster(2)
        client = cluster.client("h1", 7, on_message=lambda m: None)
        client.close()
        cluster.client("h1", 7, on_message=lambda m: None)  # port free again


class TestInterception:
    def test_unmodified_app_pattern(self):
        """An 'application' written purely against the socket surface
        runs over the overlay without knowing it exists."""
        scn = make_triangle_overlay(seed=711)

        class PingServer:
            def __init__(self, sock: InterceptedSocket):
                self.sock = sock
                sock.bind(5000)
                sock.on_datagram(self.handle)

            def handle(self, data, addr):
                self.sock.sendto({"pong": data["ping"]}, addr, size=100)

        class PingClient:
            def __init__(self, sock: InterceptedSocket):
                self.sock = sock
                self.replies = []
                sock.bind(5001)
                sock.on_datagram(lambda d, a: self.replies.append(d))

            def ping(self, server_addr):
                self.sock.sendto({"ping": 42}, server_addr, size=100)

        server = PingServer(InterceptedSocket(scn.overlay, "hz"))
        client = PingClient(InterceptedSocket(scn.overlay, "hx"))
        client.ping(("hz", 5000))
        scn.run_for(1.0)
        assert client.replies == [{"pong": 42}]

    def test_service_map_applies_operator_policy(self):
        """The interception layer, not the app, selects overlay services
        per destination."""
        scn = make_triangle_overlay(seed=712, loss_rate=0.2)
        received = []
        rx = InterceptedSocket(scn.overlay, "hz")
        rx.bind(5000)
        rx.on_datagram(lambda d, a: received.append(d))
        tx = InterceptedSocket(
            scn.overlay, "hx",
            service_map={("hz", 5000): ServiceSpec(link=LINK_RELIABLE)},
        )
        for i in range(50):
            tx.sendto(i, ("hz", 5000), size=500)
        scn.run_for(10.0)
        assert sorted(received) == list(range(50))  # reliable despite loss

    def test_unbound_sender_gets_ephemeral_port(self):
        scn = make_triangle_overlay(seed=713)
        got_from = []
        rx = InterceptedSocket(scn.overlay, "hz")
        rx.bind(5000)
        rx.on_datagram(lambda d, a: got_from.append(a))
        tx = InterceptedSocket(scn.overlay, "hx")
        assert tx.sendto("hi", ("hz", 5000)) > 0
        scn.run_for(1.0)
        assert got_from and got_from[0][0] == "hx"

    def test_double_bind_rejected(self):
        scn = make_triangle_overlay(seed=714)
        sock = InterceptedSocket(scn.overlay, "hx")
        sock.bind(5000)
        with pytest.raises(OSError):
            sock.bind(5001)

    def test_rejected_send_returns_zero(self):
        scn = make_triangle_overlay(seed=715)
        sock = InterceptedSocket(scn.overlay, "hx")
        # Anycast group with no members: the overlay refuses the send.
        assert sock.sendto("x", ("acast:none", 1)) == 0
