"""Loss-process tests, including statistical checks on seeded streams."""

import math
import random

import pytest

from repro.net.loss import (
    BernoulliLoss,
    CompositeLoss,
    GilbertElliottLoss,
    NoLoss,
    ScheduledOutages,
)


def test_no_loss_never_drops():
    model = NoLoss()
    rng = random.Random(1)
    assert not any(model.should_drop(t * 0.01, rng) for t in range(1000))
    assert model.expected_loss_rate() == 0.0


def test_bernoulli_rate_validation():
    with pytest.raises(ValueError):
        BernoulliLoss(-0.1)
    with pytest.raises(ValueError):
        BernoulliLoss(1.1)


def test_bernoulli_empirical_rate():
    model = BernoulliLoss(0.1)
    rng = random.Random(7)
    drops = sum(model.should_drop(t * 0.001, rng) for t in range(20000))
    assert 0.08 < drops / 20000 < 0.12
    assert model.expected_loss_rate() == 0.1


def test_bernoulli_zero_and_one():
    rng = random.Random(1)
    assert not BernoulliLoss(0.0).should_drop(0.0, rng)
    assert BernoulliLoss(1.0).should_drop(0.0, rng)


def test_gilbert_elliott_parameter_validation():
    with pytest.raises(ValueError):
        GilbertElliottLoss(mean_good=0.0)
    with pytest.raises(ValueError):
        GilbertElliottLoss(bad_loss=1.5)


def test_gilbert_elliott_stationary_rate():
    model = GilbertElliottLoss(mean_good=1.0, mean_bad=0.25, good_loss=0.0, bad_loss=0.8)
    expected = 0.25 / 1.25 * 0.8
    assert model.expected_loss_rate() == pytest.approx(expected)
    rng = random.Random(11)
    n = 60000
    drops = sum(model.should_drop(t * 0.005, rng) for t in range(n))
    assert abs(drops / n - expected) < 0.04


def test_gilbert_elliott_losses_are_bursty():
    """Consecutive packets should be lost together far more often than
    independence would predict — the correlated-loss window."""
    model = GilbertElliottLoss(mean_good=1.0, mean_bad=0.05, good_loss=0.0, bad_loss=0.9)
    rng = random.Random(3)
    outcomes = [model.should_drop(t * 0.002, rng) for t in range(100000)]
    p = sum(outcomes) / len(outcomes)
    pairs = sum(1 for a, b in zip(outcomes, outcomes[1:]) if a and b)
    p_pair = pairs / (len(outcomes) - 1)
    assert p_pair > 3 * p * p, "losses are not correlated"


def test_gilbert_elliott_state_advances_with_time():
    model = GilbertElliottLoss(mean_good=0.01, mean_bad=0.01, bad_loss=1.0)
    rng = random.Random(5)
    states = {model.in_bad_state(t * 0.5, rng) for t in range(50)}
    assert states == {True, False}


def test_scheduled_outages_drop_inside_window_only():
    model = ScheduledOutages([(1.0, 2.0), (5.0, 5.5)])
    rng = random.Random(1)
    assert not model.should_drop(0.5, rng)
    assert model.should_drop(1.0, rng)
    assert model.should_drop(1.99, rng)
    assert not model.should_drop(2.0, rng)
    assert model.should_drop(5.2, rng)
    assert not model.should_drop(6.0, rng)
    assert math.isnan(model.expected_loss_rate())


def test_scheduled_outage_validation():
    with pytest.raises(ValueError):
        ScheduledOutages([(2.0, 1.0)])


def test_composite_drops_when_any_component_drops():
    model = CompositeLoss(BernoulliLoss(0.0), ScheduledOutages([(0.0, 1.0)]))
    rng = random.Random(1)
    assert model.should_drop(0.5, rng)
    assert not model.should_drop(1.5, rng)


def test_composite_expected_rate_composes():
    model = CompositeLoss(BernoulliLoss(0.1), BernoulliLoss(0.2))
    assert model.expected_loss_rate() == pytest.approx(1 - 0.9 * 0.8)


def test_composite_requires_components():
    with pytest.raises(ValueError):
        CompositeLoss()
