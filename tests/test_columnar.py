"""Columnar data plane: slot-bucket engine, per-instant link profiles,
and the RNG draw-order discipline that keeps traces byte-identical.

The columnar simulator keeps one heap entry per distinct instant (a
slot bucket of (seq, event) records) and the underlay amortizes each
link's per-instant work across same-instant crossings via
``FiberLink.instant_profile``. Everything here checks the load-bearing
contract: same firing order, same RNG draws, same floats as the scalar
engine — batching selects an implementation, never an outcome.
"""

import random

import pytest

from repro.core.config import OverlayConfig
from repro.core.message import Address
from repro.core.network import OverlayNetwork
from repro.analysis.scenarios import line_scenario
from repro.analysis.workloads import CbrSource
from repro.audit.diff import diff_traces
from repro.net.backbone import (
    FWD,
    PROF_DECIDED,
    PROF_DROP,
    PROF_SCALAR,
    PROF_SHARED,
    FiberLink,
)
from repro.net.internet import Internet
from repro.net.loss import (
    BernoulliLoss,
    CompositeLoss,
    GilbertElliottLoss,
    NoLoss,
    ScheduledOutages,
)
from repro.sim.events import SimulationError, Simulator
from repro.sim.rng import RngRegistry


# ----------------------------------------------------- slot-bucket engine


def test_columnar_requires_recycled_timers():
    with pytest.raises(SimulationError):
        Simulator(columnar=True, recycle_timers=False)


def test_same_instant_events_fire_in_schedule_order():
    sim = Simulator(columnar=True)
    fired = []
    for tag in ("a", "b", "c"):
        sim.schedule(1.0, fired.append, tag)
    sim.schedule(0.5, fired.append, "early")
    sim.run()
    assert fired == ["early", "a", "b", "c"]


def test_schedule_during_drain_of_same_instant_fires_after_bucket():
    # A same-time schedule made *while* the slot drains must land in a
    # fresh bucket that fires after the current one — exactly the
    # (time, seq) order the scalar heap gives.
    sim = Simulator(columnar=True)
    fired = []

    def first():
        fired.append("first")
        sim.schedule(0.0, fired.append, "nested")

    sim.schedule(1.0, first)
    sim.schedule(1.0, fired.append, "second")
    sim.run()
    assert fired == ["first", "second", "nested"]


def test_cancelled_bucket_records_are_skipped():
    sim = Simulator(columnar=True)
    fired = []
    sim.schedule(1.0, fired.append, "keep")
    victim = sim.schedule(1.0, fired.append, "cancel")
    sim.schedule(1.0, fired.append, "keep2")
    victim.cancel()
    sim.run()
    assert fired == ["keep", "keep2"]


def test_periodic_timer_recycles_through_the_wheel():
    sim = Simulator(columnar=True)
    ticks = []
    timer = sim.schedule_periodic(0.5, lambda: ticks.append(sim.now))
    sim.run(until=2.6)
    assert ticks == [0.5, 1.0, 1.5, 2.0, 2.5]
    timer.cancel()
    sim.run(until=4.0)
    assert len(ticks) == 5


def test_max_events_requeues_bucket_remainder():
    sim = Simulator(columnar=True)
    fired = []
    for i in range(6):
        sim.schedule(1.0, fired.append, i)
    sim.run(max_events=3)
    assert fired == [0, 1, 2]
    sim.run()
    assert fired == [0, 1, 2, 3, 4, 5]


def test_iter_queued_reports_liveness():
    sim = Simulator(columnar=True)
    keep = sim.schedule(1.0, lambda: None)
    victim = sim.schedule(1.0, lambda: None)
    victim.cancel()
    by_live = {}
    for event, live in sim.iter_queued():
        by_live.setdefault(live, []).append(event)
    assert keep in by_live.get(True, [])
    assert victim in by_live.get(False, [])


def test_columnar_and_scalar_fire_orders_match():
    # A randomized mix of instants, duplicates, and cancellations fires
    # in exactly the same order on both engines.
    rng = random.Random(42)
    plan = [(rng.choice([0.5, 1.0, 1.0, 1.5, 2.0]), i) for i in range(40)]
    cancel_idx = set(rng.sample(range(40), 8))

    def drive(columnar):
        sim = Simulator(columnar=columnar)
        fired = []
        handles = [sim.schedule(delay, fired.append, tag)
                   for delay, tag in plan]
        for i in cancel_idx:
            handles[i].cancel()
        sim.run()
        return fired

    assert drive(True) == drive(False)


# ------------------------------------------------- instant_profile modes


def _rng():
    return random.Random(1234)


def test_profile_failed_link_drops_without_touching_loss():
    class Tripwire(NoLoss):
        def batch_profile(self, now, rng):  # pragma: no cover - must not run
            raise AssertionError("failed-link profile consulted the loss model")

    link = FiberLink("f", 0.01, None, Tripwire())
    link.failed = True
    failed_snap, loss_snap, mode, p, arrival = link.instant_profile(0.0, _rng())
    assert (failed_snap, mode, p, arrival) == (True, PROF_DROP, None, None)
    assert loss_snap is link.loss


def test_profile_shared_arrival_matches_traverse():
    link = FiberLink("f", 0.0123, None, NoLoss())
    entry = link.instant_profile(2.0, _rng())
    assert entry[2] == PROF_SHARED
    twin = FiberLink("f", 0.0123, None, NoLoss())
    assert entry[4] == twin.traverse(2.0, 100, FWD, _rng())


def test_profile_bernoulli_reports_per_packet_probability():
    link = FiberLink("f", 0.01, None, BernoulliLoss(0.25))
    entry = link.instant_profile(0.0, _rng())
    assert entry[2] == PROF_DECIDED
    assert entry[3] == 0.25


def test_profile_outage_is_always_drop_without_draws():
    link = FiberLink("f", 0.01, None, ScheduledOutages([(1.0, 2.0)]))
    entry = link.instant_profile(1.5, _rng())
    assert entry[2] == PROF_DROP
    assert entry[3] is None  # scalar should_drop makes no draw either
    clear = link.instant_profile(2.5, _rng())
    assert clear[2] == PROF_SHARED


def test_profile_capacitated_link_defers_to_finish_pass():
    link = FiberLink("f", 0.01, 1_000_000.0, NoLoss())
    entry = link.instant_profile(0.0, _rng())
    assert entry[2] == PROF_DECIDED
    assert entry[3] is None


def test_profile_double_stochastic_composite_is_scalar():
    loss = CompositeLoss(
        BernoulliLoss(0.1),
        GilbertElliottLoss(mean_good=1.0, mean_bad=0.1,
                           good_loss=0.0, bad_loss=1.0),
    )
    link = FiberLink("f", 0.01, None, loss)
    rng = _rng()
    state_before = rng.getstate()
    entry = link.instant_profile(0.0, rng)
    assert entry[2] == PROF_SCALAR
    # The draw-order bug this guards against: probing child profiles
    # before discovering the composite is unbatchable would consume the
    # GE child's state-advance draws out of scalar order.
    assert rng.getstate() == state_before


def test_finish_pass_matches_traverse_tail():
    # Same RNG stream, same busy-chain state: finish_pass must produce
    # traverse's exact arrival floats and counter updates once the loss
    # verdict is out of the way.
    a = FiberLink("f", 0.01, 2_000_000.0, NoLoss(), jitter=0.003)
    b = FiberLink("f", 0.01, 2_000_000.0, NoLoss(), jitter=0.003)
    rng_a, rng_b = _rng(), _rng()
    for k in range(5):
        now = 0.001 * k
        arr_a = a.traverse(now, 700, FWD, rng_a)
        arr_b = b.finish_pass(now, 700, FWD, rng_b)
        assert arr_a == arr_b
    assert a._busy_until == b._busy_until
    assert (a.bytes_carried, a.packets_carried) == (
        b.bytes_carried, b.packets_carried)


# ------------------------------------------------------- profile_traits


def test_profile_traits_classify_draw_behaviour():
    assert NoLoss().profile_traits() == (False, False)
    assert BernoulliLoss(0.0).profile_traits() == (False, True)
    assert GilbertElliottLoss(
        mean_good=1.0, mean_bad=0.1).profile_traits() == (True, True)
    assert ScheduledOutages([(0.0, 1.0)]).profile_traits() == (False, False)


def test_profile_traits_composites():
    outage = ScheduledOutages([(0.0, 1.0)])
    assert CompositeLoss(outage, BernoulliLoss(0.1)).profile_traits() == (
        False, True)
    assert CompositeLoss(
        outage, GilbertElliottLoss(mean_good=1.0, mean_bad=0.1)
    ).profile_traits() == (True, True)
    # Two per-packet-drawing children: unbatchable.
    assert CompositeLoss(
        BernoulliLoss(0.1), BernoulliLoss(0.2)).profile_traits() is None
    # An unknown child poisons the whole composite.
    class Mystery(BernoulliLoss):
        def profile_traits(self):
            return None
    assert CompositeLoss(Mystery(0.1)).profile_traits() is None


# ------------------------------------------------------ config plumbing


def test_overlay_rejects_columnar_mismatch():
    sim = Simulator()  # scalar engine
    inet = Internet(sim, RngRegistry(7))
    domain = inet.add_isp("isp", convergence_delay=10.0)
    domain.add_router("r0")
    domain.add_router("r1")
    domain.add_link("r0", "r1", 0.01, None, None)
    for name, router in (("h0", "r0"), ("h1", "r1")):
        inet.add_host(name, access_delay=0.0)
        inet.attach(name, "isp", router)
    with pytest.raises(ValueError):
        OverlayNetwork(inet, ["h0", "h1"], [("h0", "h1")],
                       OverlayConfig(columnar=True))


# ------------------------------------- end-to-end trace identity (fixed)


def _line_trace(columnar, loss_factory=None, run=3.0):
    scn = line_scenario(7, config=OverlayConfig(columnar=columnar),
                        loss_factory=loss_factory)
    sim = scn.sim
    scn.overlay.client("h5", 7)
    CbrSource(sim, scn.overlay.client("h0"), Address("h5", 7),
              rate_pps=25.0, duration=run).start()
    sim.run(until=sim.now + run + 0.5)
    return scn.overlay.trace, sim.events_processed


def test_columnar_trace_identity_composite_regression():
    # Regression for the composite draw-order bug: a Bernoulli child
    # ahead of a Gilbert-Elliott child forces the scalar path to make
    # the per-packet draw *before* the GE state advance; the columnar
    # path must not reorder those draws while classifying the profile.
    factory = lambda: CompositeLoss(
        BernoulliLoss(0.03),
        GilbertElliottLoss(mean_good=0.5, mean_bad=0.05,
                           good_loss=0.0, bad_loss=1.0),
    )
    scalar, scalar_events = _line_trace(False, factory)
    columnar, columnar_events = _line_trace(True, factory)
    assert diff_traces(columnar, scalar) is None
    assert scalar_events == columnar_events
