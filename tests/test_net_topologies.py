"""Topology builders: geographic sanity and the Sec II-A design rules."""

import pytest

import networkx as nx

from repro.net.topologies import (
    ISP_FOOTPRINTS,
    US_CITIES,
    city_link_delay,
    haversine_km,
    overlay_edges,
)


def test_haversine_known_distance():
    # NYC to LAX great-circle distance is ~3940 km.
    km = haversine_km(US_CITIES["NYC"], US_CITIES["LAX"])
    assert 3800 < km < 4100


def test_haversine_zero_for_same_point():
    assert haversine_km(US_CITIES["NYC"], US_CITIES["NYC"]) == pytest.approx(0.0)


def test_link_delays_are_short():
    """Sec II-A: overlay links should be on the order of 10 ms."""
    delays = [
        city_link_delay(a, b) for footprint in ISP_FOOTPRINTS.values()
        for a, b in footprint
    ]
    assert all(0.001 < d < 0.016 for d in delays), sorted(d * 1000 for d in delays)


def test_coast_to_coast_propagation_scale():
    """Sec II-D: crossing the continent is ~35-40 ms of propagation.

    Fiber-route NYC->LAX one-way should land in the 20-30 ms range for
    the direct geodesic; multi-hop paths through the footprints add more.
    """
    assert 0.018 < city_link_delay("NYC", "LAX") < 0.030


def test_footprints_reference_known_cities():
    for footprint in ISP_FOOTPRINTS.values():
        for a, b in footprint:
            assert a in US_CITIES and b in US_CITIES


def test_footprints_are_connected():
    for name, footprint in ISP_FOOTPRINTS.items():
        g = nx.Graph(footprint)
        assert nx.is_connected(g), f"{name} backbone is partitioned"


def test_footprints_are_2_connected():
    """Fig 1's resilient architecture: no single fiber cut should
    partition a backbone."""
    for name, footprint in ISP_FOOTPRINTS.items():
        g = nx.Graph(footprint)
        assert nx.edge_connectivity(g) >= 2, f"{name} has a bridge link"


def test_footprints_differ():
    sets = [frozenset(map(frozenset, fp)) for fp in ISP_FOOTPRINTS.values()]
    assert len(set(sets)) == len(sets), "ISP footprints should not be identical"


def test_overlay_edges_union_of_footprints():
    edges = overlay_edges(["ispA", "ispB"])
    pairs = {frozenset(e) for e in edges}
    assert frozenset(("STL", "WAS")) in pairs  # ispB-only link
    assert frozenset(("CHI", "WAS")) in pairs  # ispA-only link
    # Not a clique (Sec II-A advises against it).
    n = len(US_CITIES)
    assert len(edges) < n * (n - 1) // 2


def test_overlay_is_well_connected():
    g = nx.Graph(overlay_edges())
    assert nx.node_connectivity(g) >= 2
