"""Edge-case batteries for the recovery protocols: tail loss, buffer
bounds, acknowledgment loss, and deadline-budget corner cases."""

import pytest

from repro.analysis.workloads import CbrSource
from repro.core.message import (
    Address,
    Frame,
    LINK_NM_STRIKES,
    LINK_RELIABLE,
    ServiceSpec,
)
from tests.conftest import make_two_node_line


def _protocols(scn):
    """The two endpoints' reliable-protocol instances for h0<->h1."""
    sender = scn.overlay.nodes["h0"].protocol_for("h1", "reliable")
    receiver = scn.overlay.nodes["h1"].protocol_for("h0", "reliable")
    return sender, receiver


class TestReliableTailGuard:
    def test_last_packet_of_burst_recovered(self):
        """The signature NACK-ARQ hole: nothing follows the last packet
        to expose its loss — the tail guard must close it."""
        scn = make_two_node_line(seed=1201, loss_rate=0.35)
        got = []
        scn.overlay.client("h1", 7, on_message=lambda m: got.append(m.seq))
        tx = scn.overlay.client("h0")
        svc = ServiceSpec(link=LINK_RELIABLE)
        # Single-message "bursts" with gaps: every message is a tail.
        for i in range(30):
            tx.send(Address("h1", 7), service=svc)
            scn.run_for(0.5)
        scn.run_for(3.0)
        assert sorted(got) == list(range(30))

    def test_tail_guard_eventually_stops_when_acked(self):
        scn = make_two_node_line(seed=1202)
        got = []
        scn.overlay.client("h1", 7, on_message=lambda m: got.append(m.seq))
        scn.overlay.client("h0").send(Address("h1", 7),
                                      service=ServiceSpec(link=LINK_RELIABLE))
        scn.run_for(5.0)
        sender, __ = _protocols(scn)
        assert not sender._buffer, "acked frames must leave the buffer"
        retrans = scn.overlay.counters.get("reliable-tail-retransmit")
        assert retrans == 0  # nothing was lost; the guard stayed quiet

    def test_lost_ack_is_repaired_by_reack_on_duplicate(self):
        """Even if every ack in a window is lost, tail retransmissions
        provoke duplicate-triggered re-acks until the buffer drains."""
        scn = make_two_node_line(seed=1203, loss_rate=0.5)
        got = []
        scn.overlay.client("h1", 7, on_message=lambda m: got.append(m.seq))
        tx = scn.overlay.client("h0")
        for __ in range(10):
            tx.send(Address("h1", 7), service=ServiceSpec(link=LINK_RELIABLE))
        scn.run_for(30.0)
        assert sorted(got) == list(range(10))
        sender, __ = _protocols(scn)
        assert not sender._buffer


class TestReliableBufferBounds:
    def test_send_buffer_eviction_under_extreme_backlog(self):
        from repro.protocols import reliable

        scn = make_two_node_line(seed=1204)
        sender, __ = _protocols(scn)
        original = reliable.SEND_BUFFER
        reliable.SEND_BUFFER = 64
        try:
            tx = scn.overlay.client("h0")
            scn.overlay.client("h1", 7, on_message=lambda m: None)
            for __ in range(200):
                tx.send(Address("h1", 7), service=ServiceSpec(link=LINK_RELIABLE))
            assert len(sender._buffer) <= 65
        finally:
            reliable.SEND_BUFFER = original


class TestNMStrikesEdges:
    def test_unknown_request_is_ignored(self):
        scn = make_two_node_line(seed=1205)
        node = scn.overlay.nodes["h0"]
        protocol = node.protocol_for("h1", LINK_NM_STRIKES)
        protocol.on_frame(Frame(proto=LINK_NM_STRIKES, ftype="req",
                                src_node="h1", dst_node="h0",
                                info={"seq": 999}))
        scn.run_for(0.5)
        assert scn.overlay.counters.get("strikes-retransmit") == 0

    def test_second_request_does_not_double_schedule(self):
        scn = make_two_node_line(seed=1206)
        got = []
        scn.overlay.client("h1", 7, on_message=got.append)
        tx = scn.overlay.client("h0")
        svc = ServiceSpec.make(link=LINK_NM_STRIKES, m=2, retr_spacing=0.02)
        tx.send(Address("h1", 7), service=svc)
        scn.run_for(0.5)
        protocol = scn.overlay.nodes["h0"].protocol_for("h1", LINK_NM_STRIKES)
        # Two requests for the same seq: only the first schedules M.
        for __ in range(2):
            protocol.on_frame(Frame(proto=LINK_NM_STRIKES, ftype="req",
                                    src_node="h1", dst_node="h0",
                                    info={"seq": 0}))
        scn.run_for(1.0)
        assert scn.overlay.counters.get("strikes-retransmit") == 2  # M, not 2M

    def test_missing_cap_bounds_timer_state(self):
        from repro.protocols import strikes

        scn = make_two_node_line(seed=1207)
        receiver = scn.overlay.nodes["h1"].protocol_for("h0", LINK_NM_STRIKES)
        original = strikes.MAX_MISSING
        strikes.MAX_MISSING = 8
        try:
            # A frame with a huge sequence jump implies thousands of
            # "missing" packets; the tracker must stay bounded.
            msg_frame = Frame(
                proto=LINK_NM_STRIKES, ftype="data", src_node="h0",
                dst_node="h1", link_seq=5000,
                msg=_dummy_msg(),
            )
            receiver.on_frame(msg_frame)
            assert len(receiver._pending_requests) <= 8
        finally:
            strikes.MAX_MISSING = original

    def test_deadline_flow_p99_not_inflated_by_recovery(self):
        """Timeliness guarantee: the non-lost majority is never delayed
        by other packets' recoveries (no head-of-line blocking)."""
        scn = make_two_node_line(seed=1208, loss_rate=0.1)
        latencies = []
        scn.overlay.client(
            "h1", 7, on_message=lambda m: latencies.append(scn.sim.now - m.sent_at)
        )
        tx = scn.overlay.client("h0")
        source = CbrSource(scn.sim, tx, Address("h1", 7), rate_pps=100,
                           service=ServiceSpec(link=LINK_NM_STRIKES)).start()
        scn.run_for(5.0)
        source.stop()
        scn.run_for(1.0)
        ordered = sorted(latencies)
        p50 = ordered[len(ordered) // 2]
        assert p50 < 0.015  # one hop + processing, no queueing behind recovery


def _dummy_msg():
    from repro.core.message import OverlayMessage

    return OverlayMessage(
        flow="f", seq=0, src=Address("h0", 1), dst=Address("h1", 7),
        service=ServiceSpec(link=LINK_NM_STRIKES), origin="h0", sent_at=0.0,
    )
