"""Shared helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.analysis.scenarios import line_scenario, triangle_scenario
from repro.core.config import OverlayConfig
from repro.net.loss import BernoulliLoss
from repro.sim.events import Simulator
from repro.sim.rng import RngRegistry

# The triangle fixture moved into the library (repro.analysis.scenarios)
# so benchmarks can use it without importing the test package.
make_triangle_overlay = triangle_scenario


def make_two_node_line(
    seed: int = 1,
    loss_rate: float = 0.0,
    hop_delay: float = 0.010,
    config: OverlayConfig | None = None,
):
    """Two overlay nodes joined by a single 1-hop overlay link — the
    minimal fixture for exercising link protocols in isolation."""
    loss_factory = None
    if loss_rate > 0:
        loss_factory = lambda: BernoulliLoss(loss_rate)
    return line_scenario(
        seed,
        n_hops=1,
        hop_delay=hop_delay,
        loss_factory=loss_factory,
        config=config,
    )


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def rngs() -> RngRegistry:
    return RngRegistry(12345)
