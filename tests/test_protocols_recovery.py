"""Recovery protocols over a single lossy overlay link: best-effort,
reliable ARQ, realtime, NM-Strikes, single-strike."""

import pytest

from repro.analysis.metrics import flow_stats
from repro.analysis.workloads import CbrSource
from repro.core.message import (
    Address,
    LINK_BEST_EFFORT,
    LINK_NM_STRIKES,
    LINK_REALTIME,
    LINK_RELIABLE,
    LINK_SINGLE_STRIKE,
    ServiceSpec,
)
from repro.protocols import create_protocol, registered_protocols
from tests.conftest import make_two_node_line


def _stream(scn, service, count=400, rate=100.0):
    """CBR stream h0 -> h1 over the single overlay link; returns stats."""
    got = []
    scn.overlay.client("h1", 7, on_message=got.append)
    tx = scn.overlay.client("h0")
    source = CbrSource(
        scn.sim, tx, Address("h1", 7), rate_pps=rate, size=1000, service=service
    )
    source.start()
    scn.run_for(count / rate + 2.0)
    source.stop()
    scn.run_for(2.0)
    stats = flow_stats(scn.overlay.trace, source.flow, "h1:7")
    return got, stats, source


def test_registry_lists_all_protocols():
    expected = {
        "best-effort",
        "reliable",
        "realtime",
        "nm-strikes",
        "single-strike",
        "it-priority",
        "it-reliable",
        "fifo",
        "fec",
    }
    # Subset, not equality: other tests exercise register_protocol.
    assert expected <= set(registered_protocols())


def test_unknown_protocol_rejected():
    scn = make_two_node_line()
    node = scn.overlay.nodes["h0"]
    with pytest.raises(KeyError):
        create_protocol("nope", node, node.links["h1"])


def test_best_effort_loses_at_link_rate():
    scn = make_two_node_line(seed=31, loss_rate=0.1)
    __, stats, __ = _stream(scn, ServiceSpec(link=LINK_BEST_EFFORT))
    assert 0.85 < stats.delivery_ratio < 0.95


def test_best_effort_no_protocol_state():
    scn = make_two_node_line(seed=31)
    __, stats, __ = _stream(scn, ServiceSpec(link=LINK_BEST_EFFORT), count=50)
    assert scn.overlay.counters.get("reliable-retransmit") == 0


class TestReliable:
    def test_full_delivery_under_loss(self):
        scn = make_two_node_line(seed=32, loss_rate=0.1)
        __, stats, __ = _stream(scn, ServiceSpec(link=LINK_RELIABLE))
        assert stats.delivery_ratio == 1.0

    def test_recovery_takes_about_one_link_rtt(self):
        scn = make_two_node_line(seed=33, loss_rate=0.05, hop_delay=0.010)
        __, stats, __ = _stream(scn, ServiceSpec(link=LINK_RELIABLE))
        assert stats.delivery_ratio == 1.0
        # Recovered packets: ~10 ms (one-way) + ~20 ms (request RTT)
        # plus detection; allow one lost-NACK retry (+~25 ms).
        assert stats.latency.max < 0.105

    def test_retransmissions_happen(self):
        scn = make_two_node_line(seed=34, loss_rate=0.1)
        _stream(scn, ServiceSpec(link=LINK_RELIABLE), count=200)
        assert scn.overlay.counters.get("reliable-retransmit") > 0

    def test_nack_loss_is_survived(self):
        """NACKs themselves are lossy; the re-armed NACK timer must
        eventually recover every packet."""
        scn = make_two_node_line(seed=35, loss_rate=0.3)
        __, stats, __ = _stream(scn, ServiceSpec(link=LINK_RELIABLE), count=300)
        assert stats.delivery_ratio == 1.0

    def test_duplicates_not_delivered_twice(self):
        scn = make_two_node_line(seed=36, loss_rate=0.2)
        got, stats, source = _stream(scn, ServiceSpec(link=LINK_RELIABLE))
        seqs = [m.seq for m in got]
        assert len(seqs) == len(set(seqs))

    def test_clean_link_adds_no_latency(self):
        scn = make_two_node_line(seed=37)
        __, stats, __ = _stream(scn, ServiceSpec(link=LINK_RELIABLE), count=100)
        assert stats.latency.max < 0.015


class TestNMStrikes:
    def test_high_delivery_within_deadline_under_bursty_loss(self):
        from repro.net.loss import GilbertElliottLoss
        from repro.analysis.scenarios import line_scenario

        scn = line_scenario(
            38,
            n_hops=1,
            hop_delay=0.020,
            loss_factory=lambda: GilbertElliottLoss(
                mean_good=0.5, mean_bad=0.03, bad_loss=0.7
            ),
        )
        svc = ServiceSpec.make(
            link=LINK_NM_STRIKES, deadline=0.2, n=3, m=2,
            req_spacing=0.03, retr_spacing=0.03,
        )
        __, stats, __ = _stream(scn, svc, count=2000, rate=200.0)
        assert stats.within_deadline is None  # not requested here
        on_time = flow_stats(
            scn.overlay.trace, stats.flow, "h1:7", deadline=0.2
        ).within_deadline
        assert on_time > 0.99

    def test_overhead_is_about_one_plus_mp(self):
        """Sec IV-A: worst-case sender-side cost is 1 + M*p."""
        scn = make_two_node_line(seed=39, loss_rate=0.05)
        svc = ServiceSpec.make(link=LINK_NM_STRIKES, n=3, m=2)
        __, stats, source = _stream(scn, svc, count=2000, rate=200.0)
        retrans = scn.overlay.counters.get("strikes-retransmit")
        overhead = (source.sent + retrans) / source.sent
        # p = 0.05, M = 2 -> bound 1.10; in expectation less, because M
        # retransmissions fire only for actually-lost packets.
        assert 1.0 < overhead < 1.13

    def test_request_cancellation(self):
        """Late-arriving (reordered, not lost) packets must cancel the
        scheduled requests: near-zero loss -> near-zero requests."""
        scn = make_two_node_line(seed=40, loss_rate=0.0)
        svc = ServiceSpec.make(link=LINK_NM_STRIKES)
        _stream(scn, svc, count=300)
        assert scn.overlay.counters.get("strikes-request") == 0

    def test_never_blocks_delivery(self):
        """Complete timeliness: even at brutal loss, whatever arrives is
        delivered promptly; nothing waits on recovery."""
        scn = make_two_node_line(seed=41, loss_rate=0.4)
        svc = ServiceSpec.make(link=LINK_NM_STRIKES, n=2, m=1)
        got, stats, __ = _stream(scn, svc, count=500, rate=100.0)
        assert stats.latency.p50 < 0.015  # the non-lost majority is instant


class TestSingleStrike:
    def test_recovers_single_losses(self):
        scn = make_two_node_line(seed=42, loss_rate=0.05)
        svc = ServiceSpec(link=LINK_SINGLE_STRIKE)
        __, stats, __ = _stream(scn, svc, count=500, rate=100.0)
        assert stats.delivery_ratio > 0.99

    def test_weaker_than_nm_strikes_under_bursts(self):
        from repro.net.loss import GilbertElliottLoss
        from repro.analysis.scenarios import line_scenario

        def build(link_name, seed=43):
            scn = line_scenario(
                seed,
                n_hops=1,
                hop_delay=0.020,
                loss_factory=lambda: GilbertElliottLoss(
                    mean_good=0.3, mean_bad=0.08, bad_loss=0.9
                ),
            )
            # n/m deliberately NOT overridden: nm-strikes runs 3x2, the
            # single-strike predecessor runs its 1x1 defaults.
            svc = ServiceSpec.make(
                link=link_name, req_spacing=0.04, retr_spacing=0.04
            )
            __, stats, __ = _stream(scn, svc, count=1500, rate=150.0)
            return stats.delivery_ratio

        single = build(LINK_SINGLE_STRIKE)
        nm = build(LINK_NM_STRIKES)
        assert nm > single


class TestRealtime:
    def test_recovers_most_single_losses(self):
        scn = make_two_node_line(seed=44, loss_rate=0.1)
        __, stats, __ = _stream(scn, ServiceSpec(link=LINK_REALTIME), count=500)
        assert stats.delivery_ratio > 0.97

    def test_single_nack_only(self):
        scn = make_two_node_line(seed=45, loss_rate=0.1)
        _stream(scn, ServiceSpec(link=LINK_REALTIME), count=500)
        nacks = scn.overlay.counters.get("realtime-nack")
        retrans = scn.overlay.counters.get("realtime-retransmit")
        assert nacks > 0
        # one-shot: retransmissions can't exceed what was asked for once
        assert retrans <= nacks * 64
