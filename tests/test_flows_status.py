"""Flow tables (Sec II-C's flow-based processing state) and the
network status snapshot."""

from repro.core.flows import FlowTable
from repro.core.message import (
    Address,
    LINK_RELIABLE,
    OverlayMessage,
    ROUTING_FLOOD,
    ServiceSpec,
)
from tests.conftest import make_triangle_overlay


def _msg(flow="f1", origin="a", dst=("b", 7), service=None, size=100):
    spec = service if service is not None else ServiceSpec()
    return OverlayMessage(
        flow=flow, seq=0, src=Address(origin, 1), dst=Address(*dst),
        service=spec, origin=origin, sent_at=0.0, size=size,
    )


class TestFlowTable:
    def test_observation_accumulates(self):
        table = FlowTable()
        table.observe(_msg(), 1.0, "origin")
        table.observe(_msg(), 2.0, "origin")
        entry = table.entry("f1")
        assert entry.messages == 2
        assert entry.bytes == 200
        assert entry.first_seen == 1.0
        assert entry.last_seen == 2.0

    def test_roles_are_tracked(self):
        table = FlowTable()
        table.observe(_msg(), 1.0, "origin")
        table.observe(_msg(), 1.5, "delivered")
        assert table.entry("f1").roles == {"origin", "delivered"}

    def test_active_sorts_busiest_first(self):
        table = FlowTable()
        table.observe(_msg(flow="small", size=10), 1.0, "origin")
        table.observe(_msg(flow="big", size=10_000), 1.0, "origin")
        assert [e.flow for e in table.active(2.0)] == ["big", "small"]

    def test_idle_flows_leave_active_view_and_expire(self):
        table = FlowTable(idle_timeout=5.0)
        table.observe(_msg(flow="old"), 0.0, "origin")
        table.observe(_msg(flow="new"), 100.0, "origin")
        assert [e.flow for e in table.active(101.0)] == ["new"]
        assert table.expire(101.0) == 1
        assert len(table) == 1

    def test_aggregation_by_node_pair(self):
        table = FlowTable()
        table.observe(_msg(flow="f1", origin="a", dst=("b", 7)), 1.0, "origin")
        table.observe(_msg(flow="f2", origin="a", dst=("b", 8)), 1.0, "origin")
        table.observe(_msg(flow="f3", origin="c", dst=("b", 7)), 1.0, "origin")
        pairs = table.by_node_pair(2.0)
        assert pairs[("a", "b:7")]["flows"] == 1
        assert pairs[("a", "b:8")]["flows"] == 1
        assert pairs[("c", "b:7")]["flows"] == 1

    def test_aggregation_by_service(self):
        table = FlowTable()
        reliable = ServiceSpec(link=LINK_RELIABLE)
        flood = ServiceSpec(routing=ROUTING_FLOOD)
        table.observe(_msg(flow="f1", service=reliable), 1.0, "origin")
        table.observe(_msg(flow="f2", service=reliable), 1.0, "origin")
        table.observe(_msg(flow="f3", service=flood), 1.0, "origin")
        services = table.by_service(2.0)
        assert services[("link-state", "reliable")]["flows"] == 2
        assert services[("flood", "best-effort")]["flows"] == 1


class TestNodeFlowIntegration:
    def test_origin_transit_delivery_roles(self):
        scn = make_triangle_overlay(seed=1801)
        scn.internet.isps["tri"].fail_link("x", "z")
        scn.run_for(8.0)  # force hx -> hy -> hz
        got = []
        scn.overlay.client("hz", 7, on_message=got.append)
        tx = scn.overlay.client("hx")
        for __ in range(5):
            tx.send(Address("hz", 7))
        scn.run_for(1.0)
        assert got
        flow = got[0].flow
        assert "origin" in scn.overlay.nodes["hx"].flows.entry(flow).roles
        assert "forwarded" in scn.overlay.nodes["hy"].flows.entry(flow).roles
        assert "delivered" in scn.overlay.nodes["hz"].flows.entry(flow).roles


class TestStatus:
    def test_status_snapshot_shape(self):
        scn = make_triangle_overlay(seed=1802)
        rx = scn.overlay.client("hz", 7, on_message=lambda m: None)
        rx.join("mcast:g")
        scn.run_for(1.0)
        scn.overlay.client("hx").send(Address("hz", 7))
        scn.run_for(0.5)
        status = scn.overlay.status()
        assert status["converged"]
        hz = status["nodes"]["hz"]
        assert hz["clients"] == 1
        assert hz["groups"] == ["mcast:g"]
        assert hz["links"]["hx"]["up"]
        assert status["nodes"]["hx"]["active_flows"] >= 1

    def test_status_reflects_crash(self):
        scn = make_triangle_overlay(seed=1803)
        scn.overlay.crash("hy")
        scn.run_for(1.0)
        status = scn.overlay.status()
        assert status["nodes"]["hy"]["crashed"]
        assert not status["converged"]

    def test_format_status_is_readable(self):
        scn = make_triangle_overlay(seed=1804)
        text = scn.overlay.format_status()
        assert "overlay status" in text
        assert "hx" in text and "-> hy" in text
