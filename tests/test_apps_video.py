"""Video transport applications (Sec III-A, IV-A)."""

import pytest

from repro.analysis.scenarios import continental_scenario
from repro.apps.video import TS_PACKET_BYTES, VideoReceiver, VideoSource
from repro.net.loss import BernoulliLoss, GilbertElliottLoss


def _bursty():
    return GilbertElliottLoss(mean_good=2.0, mean_bad=0.04, bad_loss=0.5)


def test_ts_packet_framing():
    assert TS_PACKET_BYTES == 1316


def test_broadcast_video_full_continuity_under_loss():
    scn = continental_scenario(seed=71, loss_factory=_bursty)
    rx_lax = VideoReceiver(scn.overlay, "site-LAX")
    rx_mia = VideoReceiver(scn.overlay, "site-MIA")
    scn.run_for(0.5)
    src = VideoSource(scn.overlay, "site-NYC", rate_mbps=1.0).start()
    scn.run_for(5.0)
    src.stop()
    scn.run_for(1.0)
    for rx in (rx_lax, rx_mia):
        quality = rx.quality(src.frames_sent)
        # Hop-by-hop recovery repairs all *link* loss; the only frames
        # that may slip are the handful in flight during a multicast
        # tree change (cost-driven reroutes under the loss storms).
        assert quality.continuity > 0.99
        assert quality.frames_lost <= 5


def test_live_video_uses_deadline_service():
    scn = continental_scenario(seed=72)
    src = VideoSource(scn.overlay, "site-NYC", live=True, deadline=0.2)
    assert src.service.deadline == 0.2
    assert src.service.link == "nm-strikes"


def test_live_video_within_200ms_under_bursty_loss():
    scn = continental_scenario(seed=73, loss_factory=_bursty)
    rx = VideoReceiver(scn.overlay, "site-LAX", playout_delay=0.2)
    scn.run_for(0.5)
    src = VideoSource(scn.overlay, "site-NYC", rate_mbps=1.0, live=True).start()
    scn.run_for(6.0)
    src.stop()
    scn.run_for(1.0)
    quality = rx.quality(src.frames_sent)
    assert quality.continuity > 0.98


def test_video_survives_fiber_cut_with_subsecond_glitch():
    """The availability story: a mid-stream fiber cut on the delivery
    path costs well under a second of video."""
    scn = continental_scenario(seed=74)
    rx = VideoReceiver(scn.overlay, "site-LAX", playout_delay=0.5)
    scn.run_for(0.5)
    src = VideoSource(scn.overlay, "site-NYC", rate_mbps=1.0).start()
    scn.run_for(2.0)
    # Cut the fiber under the first overlay hop of the current path.
    path = scn.overlay.overlay_path("site-NYC", "site-LAX")
    a, b = path[0].removeprefix("site-"), path[1].removeprefix("site-")
    scn.internet.fail_fiber("ispA", a, b)
    scn.run_for(6.0)
    src.stop()
    scn.run_for(1.0)
    quality = rx.quality(src.frames_sent)
    assert quality.continuity > 0.95  # lost far less than the ~6 s outage window


def test_receiver_quality_with_no_frames():
    scn = continental_scenario(seed=75)
    rx = VideoReceiver(scn.overlay, "site-LAX")
    quality = rx.quality(0)
    assert quality.frames_expected == 0
    import math

    assert math.isnan(quality.continuity)
