"""Intrusion-tolerant Priority/Reliable messaging and the FIFO baseline:
fairness under resource-consumption attack, priority drops, and
hop-by-hop backpressure (Sec IV-B)."""

import pytest

from repro.analysis.metrics import flow_stats
from repro.analysis.workloads import CbrSource
from repro.core.config import OverlayConfig
from repro.core.message import (
    Address,
    LINK_FIFO,
    LINK_IT_PRIORITY,
    LINK_IT_RELIABLE,
    ServiceSpec,
)
from tests.conftest import make_two_node_line


def _capacity_config(bps=2_000_000.0):
    """A tight access capacity so contention (and thus scheduling
    policy) matters."""
    return OverlayConfig(access_capacity_bps=bps)


def _attack_scenario(link_protocol, seed=51, attack_rate=2000.0, good_rate=50.0):
    """One correct source and one flooding source share the h0->h1 link."""
    scn = make_two_node_line(seed=seed, config=_capacity_config())
    sim = scn.sim
    overlay = scn.overlay
    overlay.client("h1", 7, on_message=lambda m: None)
    overlay.client("h1", 8, on_message=lambda m: None)
    good_tx = overlay.client("h0")
    evil_tx = overlay.client("h0")
    svc = ServiceSpec(link=link_protocol)
    good = CbrSource(sim, good_tx, Address("h1", 7), rate_pps=good_rate,
                     size=1000, service=svc).start()
    evil = CbrSource(sim, evil_tx, Address("h1", 8), rate_pps=attack_rate,
                     size=1000, service=svc).start()
    scn.run_for(5.0)
    good.stop()
    evil.stop()
    scn.run_for(2.0)
    good_stats = flow_stats(overlay.trace, good.flow, "h1:7")
    return scn, good_stats


def test_it_priority_protects_correct_sources_from_flooder():
    __, good = _attack_scenario(LINK_IT_PRIORITY)
    assert good.delivery_ratio > 0.95
    assert good.latency.p99 < 0.1


def test_fifo_baseline_collapses_under_flooder():
    __, good = _attack_scenario(LINK_FIFO)
    assert good.delivery_ratio < 0.5  # starved by the shared queue


def test_it_priority_flooder_only_hurts_itself():
    scn, __ = _attack_scenario(LINK_IT_PRIORITY)
    assert scn.overlay.counters.get("it-priority-dropped") > 0


def test_it_priority_priority_drop_policy():
    """When a source overflows its own buffer, its *lowest priority,
    oldest* messages go first."""
    scn = make_two_node_line(seed=52, config=_capacity_config(bps=400_000.0))
    got = []
    scn.overlay.client("h1", 7, on_message=lambda m: got.append(m.service.priority))
    tx = scn.overlay.client("h0")
    low = ServiceSpec(link=LINK_IT_PRIORITY, priority=1)
    high = ServiceSpec(link=LINK_IT_PRIORITY, priority=9)
    # Burst far beyond the 64-message source buffer, alternating.
    for i in range(300):
        tx.send(Address("h1", 7), service=low if i % 2 else high)
    scn.run_for(10.0)
    assert scn.overlay.counters.get("it-priority-dropped") > 0
    survivors_high = sum(1 for p in got if p == 9)
    survivors_low = sum(1 for p in got if p == 1)
    assert survivors_high > survivors_low


def test_it_priority_low_priority_never_evicts_high():
    scn = make_two_node_line(seed=53, config=_capacity_config(bps=100_000.0))
    got = []
    scn.overlay.client("h1", 7, on_message=lambda m: got.append(m.service.priority))
    tx = scn.overlay.client("h0")
    high = ServiceSpec(link=LINK_IT_PRIORITY, priority=9)
    low = ServiceSpec(link=LINK_IT_PRIORITY, priority=1)
    for __ in range(64):  # fill the buffer with high priority
        tx.send(Address("h1", 7), service=high)
    for __ in range(100):  # these should all be refused entry
        tx.send(Address("h1", 7), service=low)
    scn.run_for(20.0)
    assert sum(1 for p in got if p == 9) == 64


class TestITReliable:
    def test_reliable_delivery_under_loss(self):
        scn = make_two_node_line(seed=54, loss_rate=0.1,
                                 config=_capacity_config())
        got = []
        scn.overlay.client("h1", 7, on_message=lambda m: got.append(m.seq))
        tx = scn.overlay.client("h0")
        svc = ServiceSpec(link=LINK_IT_RELIABLE, ordered=True)
        source = CbrSource(
            scn.sim, tx, Address("h1", 7), rate_pps=50.0, service=svc
        ).start()
        scn.run_for(2.0)
        source.stop()
        scn.run_for(10.0)
        assert got == list(range(source.sent))
        assert source.sent >= 95  # backpressure never engaged at this rate

    def test_backpressure_rejects_at_source_when_flow_saturated(self):
        """A flow whose destination cannot drain must see sends refused
        at the origin (buffer bound + no acks = closed window)."""
        scn = make_two_node_line(seed=55, config=_capacity_config(bps=50_000.0))
        scn.overlay.client("h1", 7, on_message=lambda m: None)
        tx = scn.overlay.client("h0")
        svc = ServiceSpec(link=LINK_IT_RELIABLE)
        accepted = sum(
            tx.send(Address("h1", 7), size=1000, service=svc) for __ in range(500)
        )
        assert accepted < 500
        assert scn.overlay.counters.get("it-reliable-backpressure") > 0

    def test_backpressure_releases_as_flow_drains(self):
        scn = make_two_node_line(seed=56, config=_capacity_config(bps=200_000.0))
        scn.overlay.client("h1", 7, on_message=lambda m: None)
        tx = scn.overlay.client("h0")
        svc = ServiceSpec(link=LINK_IT_RELIABLE)
        refused_once = False
        sent = 0
        for round_idx in range(20):
            for __ in range(50):
                if tx.send(Address("h1", 7), size=1000, service=svc):
                    sent += 1
                else:
                    refused_once = True
            scn.run_for(1.0)
        assert refused_once
        assert sent > 500  # drained windows reopened

    def test_per_flow_isolation(self):
        """A stalled flow (receiver gone) must not block other flows on
        the same link — per-flow storage, Sec IV-B."""
        scn = make_two_node_line(seed=57, config=_capacity_config())
        got = []
        scn.overlay.client("h1", 7, on_message=lambda m: got.append(m.seq))
        # port 9 has NO client: that flow's deliveries vanish, but acks
        # still flow (accepted-at-destination), so instead stall by
        # saturating a slow link with a fat flow.
        tx_good = scn.overlay.client("h0")
        tx_stalled = scn.overlay.client("h0")
        svc = ServiceSpec(link=LINK_IT_RELIABLE)
        for __ in range(200):
            tx_stalled.send(Address("h1", 9), size=1000, service=svc)
        for __ in range(50):
            tx_good.send(Address("h1", 7), size=200, service=svc)
        scn.run_for(15.0)
        assert sorted(got) == list(range(50))

    def test_retransmission_on_ack_loss(self):
        scn = make_two_node_line(seed=58, loss_rate=0.25,
                                 config=_capacity_config())
        got = []
        scn.overlay.client("h1", 7, on_message=lambda m: got.append(m.seq))
        tx = scn.overlay.client("h0")
        svc = ServiceSpec(link=LINK_IT_RELIABLE)
        for __ in range(60):
            tx.send(Address("h1", 7), service=svc)
        scn.run_for(20.0)
        assert sorted(set(got)) == list(range(60))
        assert len(got) == len(set(got)), "duplicates leaked to the client"
        assert scn.overlay.counters.get("it-reliable-retransmit") > 0


def test_crypto_verify_delay_charged_per_hop():
    slow = OverlayConfig(access_capacity_bps=None, crypto_verify_delay=0.005)
    fast = OverlayConfig(access_capacity_bps=None, crypto_verify_delay=0.0)

    def latency(config, seed=59):
        scn = make_two_node_line(seed=seed, config=config)
        got = []
        scn.overlay.client("h1", 7, on_message=lambda m: got.append(scn.sim.now - m.sent_at))
        scn.overlay.client("h0").send(
            Address("h1", 7), service=ServiceSpec(link=LINK_IT_PRIORITY)
        )
        scn.run_for(1.0)
        return got[0]

    assert latency(slow) - latency(fast) == pytest.approx(0.005, abs=0.001)
