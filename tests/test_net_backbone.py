"""Fiber links and routing domains: traversal, queuing, and the
stale-tables-until-reconvergence behaviour that E2 measures against."""

import random

import pytest

from repro.net.backbone import FWD, REV, FiberLink, RoutingDomain
from repro.net.loss import BernoulliLoss
from repro.sim.events import Simulator


def _chain(sim, n=4, delay=0.01, convergence=5.0):
    domain = RoutingDomain("isp", sim, convergence_delay=convergence)
    for i in range(n - 1):
        domain.add_link(f"r{i}", f"r{i + 1}", delay)
    return domain


def test_fiber_traverse_adds_delay():
    link = FiberLink("l", delay=0.01)
    arrival = link.traverse(1.0, 100, FWD, random.Random(1))
    assert arrival == pytest.approx(1.01)
    assert link.packets_carried == 1
    assert link.bytes_carried == 100


def test_fiber_negative_delay_rejected():
    with pytest.raises(ValueError):
        FiberLink("l", delay=-0.1)


def test_failed_fiber_drops_everything():
    link = FiberLink("l", delay=0.01)
    link.failed = True
    assert link.traverse(0.0, 100, FWD, random.Random(1)) is None
    assert link.packets_dropped == 1


def test_fiber_loss_model_applies():
    link = FiberLink("l", delay=0.01, loss=BernoulliLoss(1.0))
    assert link.traverse(0.0, 100, FWD, random.Random(1)) is None


def test_capacity_serialization_delay():
    link = FiberLink("l", delay=0.0, capacity_bps=8000.0)  # 1000 B/s
    rng = random.Random(1)
    first = link.traverse(0.0, 100, FWD, rng)
    assert first == pytest.approx(0.1)  # 100 B at 1000 B/s
    second = link.traverse(0.0, 100, FWD, rng)
    assert second == pytest.approx(0.2)  # queued behind the first


def test_capacity_directions_are_independent():
    link = FiberLink("l", delay=0.0, capacity_bps=8000.0)
    rng = random.Random(1)
    link.traverse(0.0, 100, FWD, rng)
    reverse = link.traverse(0.0, 100, REV, rng)
    assert reverse == pytest.approx(0.1)


def test_queue_overflow_drops():
    link = FiberLink("l", delay=0.0, capacity_bps=8.0)  # 1 B/s: 100 B = 100 s
    rng = random.Random(1)
    assert link.traverse(0.0, 100, FWD, rng) is not None
    assert link.traverse(0.0, 100, FWD, rng) is None  # queue delay 100 s > cap


def test_domain_routes_along_chain():
    sim = Simulator()
    domain = _chain(sim)
    assert domain.current_path("r0", "r3") == ["r0", "r1", "r2", "r3"]
    assert domain.next_hop("r0", "r3") == "r1"
    assert domain.current_path("r2", "r2") == ["r2"]


def test_domain_rejects_self_loop():
    sim = Simulator()
    domain = RoutingDomain("isp", sim)
    with pytest.raises(ValueError):
        domain.add_link("a", "a", 0.01)


def test_tables_stay_stale_until_convergence():
    sim = Simulator()
    domain = _chain(sim, convergence=5.0)
    sim.run(until=1.0)
    domain.fail_link("r1", "r2")
    # Tables still point through the dead link...
    assert domain.current_path("r0", "r3") == ["r0", "r1", "r2", "r3"]
    sim.run(until=3.0)
    assert domain.current_path("r0", "r3") == ["r0", "r1", "r2", "r3"]
    # ...until convergence_delay elapses; the chain has no alternative.
    sim.run(until=7.0)
    assert domain.current_path("r0", "r3") is None


def test_reconvergence_uses_alternate_path():
    sim = Simulator()
    domain = RoutingDomain("isp", sim, convergence_delay=2.0)
    domain.add_link("a", "b", 0.01)
    domain.add_link("b", "c", 0.01)
    domain.add_link("a", "c", 0.05)
    assert domain.current_path("a", "c") == ["a", "b", "c"]
    domain.fail_link("a", "b")
    sim.run(until=3.0)
    assert domain.current_path("a", "c") == ["a", "c"]


def test_repair_restores_path_after_convergence():
    sim = Simulator()
    domain = RoutingDomain("isp", sim, convergence_delay=2.0)
    domain.add_link("a", "b", 0.01)
    domain.add_link("b", "c", 0.01)
    domain.add_link("a", "c", 0.05)
    domain.fail_link("a", "b")
    sim.run(until=3.0)
    domain.repair_link("a", "b")
    sim.run(until=6.0)
    assert domain.current_path("a", "c") == ["a", "b", "c"]


def test_fail_unknown_link_raises():
    sim = Simulator()
    domain = _chain(sim)
    with pytest.raises(KeyError):
        domain.fail_link("r0", "r3")


def test_shortest_converged_path_sees_live_topology():
    sim = Simulator()
    domain = RoutingDomain("isp", sim, convergence_delay=100.0)
    domain.add_link("a", "b", 0.01)
    domain.add_link("b", "c", 0.01)
    domain.add_link("a", "c", 0.05)
    domain.fail_link("a", "b")
    # Forwarding is stale, but the audit view reflects the cut at once.
    assert domain.shortest_converged_path("a", "c") == ["a", "c"]


def test_converge_listeners_fire():
    sim = Simulator()
    domain = _chain(sim, convergence=1.0)
    fired = []
    domain.on_converge(lambda: fired.append(sim.now))
    domain.fail_link("r0", "r1")
    sim.run(until=2.0)
    assert fired == [1.0]


def test_multiple_failures_coalesce_into_one_reconvergence():
    sim = Simulator()
    domain = _chain(sim, n=5, convergence=1.0)
    fired = []
    domain.on_converge(lambda: fired.append(sim.now))
    domain.fail_link("r0", "r1")
    domain.fail_link("r2", "r3")
    sim.run(until=3.0)
    assert len(fired) == 1


def test_links_enumeration():
    sim = Simulator()
    domain = _chain(sim, n=4)
    assert len(domain.links()) == 3
