"""Security substrate: unforgeability and adversary behaviours."""

import pytest

from repro.core.message import Address, ROUTING_DISJOINT, ROUTING_FLOOD, ServiceSpec
from repro.security.adversary import (
    Blackhole,
    DelayInjector,
    Duplicator,
    NodeBehavior,
    SelectiveDropper,
)
from repro.security.crypto import AuthToken, Authenticator, KeyStore
from tests.conftest import make_triangle_overlay


class TestKeyStore:
    def test_sign_and_verify_roundtrip(self):
        ks = KeyStore()
        ks.register("node-a")
        token = ks.sign("node-a", ("msg", 1))
        assert ks.verify(token, ("msg", 1))

    def test_wrong_content_fails(self):
        ks = KeyStore()
        ks.register("node-a")
        token = ks.sign("node-a", ("msg", 1))
        assert not ks.verify(token, ("msg", 2))

    def test_unknown_identity_cannot_sign(self):
        ks = KeyStore()
        with pytest.raises(KeyError):
            ks.sign("ghost", "x")

    def test_forged_token_rejected(self):
        """A compromised node cannot mint tokens for another identity:
        a signer object it fabricates is not the registered one."""
        ks = KeyStore()
        ks.register("victim")
        from repro.security.crypto import _Signer

        fake = AuthToken(_Signer("victim"), ("msg", 1))
        assert not ks.verify(fake, ("msg", 1))

    def test_replay_of_own_signature_verifies(self):
        # Replay protection is the protocol's job (seq numbers), not the
        # signature's.
        ks = KeyStore()
        ks.register("a")
        token = ks.sign("a", ("msg", 1))
        assert ks.verify(token, ("msg", 1))
        assert ks.verify(token, ("msg", 1))

    def test_authenticator_costs_scale(self):
        auth = Authenticator(KeyStore(), sign_delay=0.001, verify_delay=0.0001)
        assert auth.sign_cost(3) == pytest.approx(0.003)
        assert auth.verify_cost(10) == pytest.approx(0.001)


def _unicast_through_middle(scn, service=None):
    """hx -> hz forced through hy (direct leg removed from carriers by
    failing the fiber then reconverging)."""
    scn.internet.isps["tri"].fail_link("x", "z")
    scn.run_for(8.0)  # overlay reroutes AND the underlay reconverges
    got = []
    scn.overlay.client("hz", 7, on_message=got.append)
    tx = scn.overlay.client("hx")
    tx.send(Address("hz", 7), service=service)
    scn.run_for(1.0)
    return got


def test_blackhole_kills_single_path_traffic():
    scn = make_triangle_overlay(seed=61)
    scn.overlay.compromise("hy", Blackhole())
    got = _unicast_through_middle(scn)
    assert got == []
    assert scn.overlay.counters.get("adversary-dropped") >= 1


def test_blackhole_stays_invisible_to_routing():
    """Control traffic still flows, so the connectivity graph never
    learns anything is wrong — the insidious part of the threat."""
    scn = make_triangle_overlay(seed=62)
    scn.overlay.compromise("hy", Blackhole())
    scn.internet.isps["tri"].fail_link("x", "z")
    scn.run_for(8.0)
    assert scn.overlay.overlay_path("hx", "hz") == ["hx", "hy", "hz"]


def test_selective_dropper_spares_unmatched_flows():
    scn = make_triangle_overlay(seed=63)
    scn.overlay.compromise("hy", SelectiveDropper(victim_sources=["hx"]))
    scn.internet.isps["tri"].fail_link("x", "z")
    scn.run_for(8.0)
    # hx's traffic dies...
    got_x = []
    scn.overlay.client("hz", 7, on_message=got_x.append)
    scn.overlay.client("hx").send(Address("hz", 7))
    scn.run_for(1.0)
    assert got_x == []
    # ...but hy's own clients' traffic to hz flows (different source).
    got_y = []
    scn.overlay.client("hz", 8, on_message=got_y.append)
    scn.overlay.client("hy").send(Address("hz", 8))
    scn.run_for(1.0)
    assert len(got_y) == 1


def test_delay_injector_delivers_late():
    scn = make_triangle_overlay(seed=64)
    scn.overlay.compromise("hy", DelayInjector(0.5))
    latencies = []
    scn.internet.isps["tri"].fail_link("x", "z")
    scn.run_for(8.0)
    scn.overlay.client("hz", 7, on_message=lambda m: latencies.append(scn.sim.now - m.sent_at))
    scn.overlay.client("hx").send(Address("hz", 7))
    scn.run_for(2.0)
    assert len(latencies) == 1
    assert latencies[0] > 0.5


def test_duplicator_absorbed_by_deduplication():
    scn = make_triangle_overlay(seed=65)
    scn.overlay.compromise("hy", Duplicator(copies=4))
    got = _unicast_through_middle(scn)
    assert len(got) == 1  # de-duplication at the egress node


def test_duplicator_validation():
    with pytest.raises(ValueError):
        Duplicator(0)


def test_default_behavior_is_honest():
    scn = make_triangle_overlay(seed=66)
    scn.overlay.compromise("hy", NodeBehavior())
    got = _unicast_through_middle(scn)
    assert len(got) == 1


class TestRedundantDisseminationVsCompromise:
    """E5's core guarantees on the smallest meaningful topology."""

    def test_two_disjoint_paths_survive_one_blackhole(self):
        scn = make_triangle_overlay(seed=67)
        scn.overlay.compromise("hy", Blackhole())
        got = []
        scn.overlay.client("hz", 7, on_message=got.append)
        tx = scn.overlay.client("hx")
        tx.send(Address("hz", 7), service=ServiceSpec(routing=ROUTING_DISJOINT, k=2))
        scn.run_for(1.0)
        assert len(got) == 1  # the hx-hz direct path is untouched

    def test_flooding_survives_one_blackhole(self):
        scn = make_triangle_overlay(seed=68)
        scn.overlay.compromise("hy", Blackhole())
        got = []
        scn.overlay.client("hz", 7, on_message=got.append)
        scn.overlay.client("hx").send(
            Address("hz", 7), service=ServiceSpec(routing=ROUTING_FLOOD)
        )
        scn.run_for(1.0)
        assert len(got) == 1

    def test_single_path_routing_does_not_survive(self):
        scn = make_triangle_overlay(seed=69)
        scn.overlay.compromise("hy", Blackhole())
        got = _unicast_through_middle(scn)
        assert got == []
