"""Sweep engine: serial/parallel equivalence, seeds, cache, failures.

The engine's contract (DESIGN.md "Experiment engine"):

* ``workers=0`` and ``workers=N`` produce byte-identical tables — a
  cell is a pure function of ``(seed, params)``, so where it runs can
  never change what it computes;
* per-cell seeds derive via blake2b of ``"{master}:{key}"`` (the
  RngRegistry discipline, distinct hash family) and are stable forever;
* the result cache is keyed by cell spec + source fingerprint — hits
  are byte-identical, fingerprint moves invalidate everything;
* failures surface as failed *cells*, never hung *runs* — including a
  worker process dying outright.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis.metrics import ReplicateStat, replicate_stats
from repro.analysis.runner import (
    SweepCache,
    WORKERS_ENV,
    resolve_workers,
    run_sweep,
    source_fingerprint,
)
from repro.analysis.sweep import (
    Cell,
    Sweep,
    SweepError,
    cell_seed,
    counters_of,
    grid,
    with_counters,
)


# Cells must be top-level functions: workers unpickle them by reference.

def _arith_cell(seed: int, x: int, scale: float):
    rnd = (seed % 9973) / 9973.0
    return {"y": x * scale + rnd, "x": x}


def _sim_cell(seed: int, ticks: int):
    from repro.sim.events import Simulator

    sim = Simulator()
    for i in range(ticks):
        sim.schedule(0.001 * (i + 1), lambda: None)
    sim.run(until=1.0)
    return with_counters({"ticks": ticks}, sim)


def _flaky_cell(seed: int, mode: str):
    if mode == "raise":
        raise ValueError(f"boom seed={seed}")
    if mode == "die":
        os._exit(13)
    return {"ok": 1.0}


def _arith_sweep(pin: int | None = 4501) -> Sweep:
    return Sweep(
        name="test_arith",
        run_cell=_arith_cell,
        cells=[Cell(key=(x, s), params={"x": x, "scale": s}, seed=pin)
               for x in (1, 2, 3) for s in (0.5, 2.0)],
        master_seed=4500,
    )


def _dump(result) -> str:
    """Canonical bytes of a table (keys stringified for JSON)."""
    table = result.as_table()
    return json.dumps({str(k): v for k, v in table.items()}, sort_keys=True)


# ------------------------------------------------------- serial == parallel

def test_serial_and_parallel_tables_are_byte_identical():
    sweep = _arith_sweep()
    serial = run_sweep(sweep, workers=0, cache=False)
    pooled = run_sweep(sweep, workers=2, cache=False)
    assert _dump(serial) == _dump(pooled)
    assert list(serial.as_table()) == [c.key for c in sweep.cells]
    assert list(pooled.as_table()) == [c.key for c in sweep.cells]
    assert serial.executed == len(sweep.cells)
    assert pooled.executed == len(sweep.cells)


def test_parallel_respects_declared_order_not_completion_order():
    # Cells with very different costs: completion order differs from
    # declared order, collection must not.
    sweep = Sweep(
        name="test_order",
        run_cell=_sim_cell,
        cells=[Cell(key=t, params={"ticks": t}) for t in (500, 1, 200, 5)],
        master_seed=1,
    )
    pooled = run_sweep(sweep, workers=2, cache=False)
    assert list(pooled.as_table()) == [500, 1, 200, 5]


# -------------------------------------------------------------------- seeds

def test_cell_seed_is_stable_forever():
    # Pinned: these exact values are the cache-compatibility contract.
    assert cell_seed(7, ("a", 1)) == 18109028095814720206
    assert cell_seed(7, "a|1") == 18109028095814720206  # label form
    assert cell_seed(7, ("a", 1), replicate=1) != cell_seed(7, ("a", 1))


def test_cell_seed_varies_by_master_key_and_replicate():
    seeds = {
        cell_seed(1, "k"), cell_seed(2, "k"), cell_seed(1, "j"),
        cell_seed(1, "k", 1), cell_seed(1, "k", 2),
    }
    assert len(seeds) == 5


def test_pinned_seed_is_used_verbatim_for_replicate_zero():
    sweep = _arith_sweep(pin=4501)
    cell = sweep.cells[0]
    assert sweep.seed_for(cell, 0) == 4501
    assert sweep.seed_for(cell, 1) == cell_seed(4501, cell.key, 1)
    unpinned = _arith_sweep(pin=None)
    assert unpinned.seed_for(unpinned.cells[0], 0) == cell_seed(
        4500, unpinned.cells[0].key
    )


# -------------------------------------------------------------------- cache

def test_cache_hit_miss_and_fingerprint_invalidation(tmp_path):
    sweep = _arith_sweep()
    store = SweepCache(tmp_path)
    cold = run_sweep(sweep, workers=0, cache=store, fingerprint="v1")
    assert (cold.executed, cold.cached) == (len(sweep.cells), 0)
    warm = run_sweep(sweep, workers=0, cache=store, fingerprint="v1")
    assert (warm.executed, warm.cached) == (0, len(sweep.cells))
    assert _dump(warm) == _dump(cold)  # hits are byte-identical
    # A moved source fingerprint makes every entry unreachable.
    fresh = run_sweep(sweep, workers=0, cache=store, fingerprint="v2")
    assert (fresh.executed, fresh.cached) == (len(sweep.cells), 0)


def test_cache_disabled_always_executes(tmp_path):
    sweep = _arith_sweep()
    for _ in range(2):
        result = run_sweep(sweep, workers=0, cache=False)
        assert result.cached == 0


def test_source_fingerprint_tracks_extra_files(tmp_path):
    base = source_fingerprint()
    assert base == source_fingerprint()  # memoized, stable in-process
    extra = tmp_path / "bench_mod.py"
    extra.write_text("A = 1\n")
    with_extra = source_fingerprint((str(extra),))
    assert with_extra != base


# ----------------------------------------------------------------- failures

def test_in_cell_exception_becomes_failed_cell_not_crash():
    sweep = Sweep(
        name="test_raise",
        run_cell=_flaky_cell,
        cells=[
            Cell(key="good-1", params={"mode": "ok"}),
            Cell(key="bad", params={"mode": "raise"}),
            Cell(key="good-2", params={"mode": "ok"}),
        ],
        master_seed=9,
    )
    result = run_sweep(sweep, workers=0, cache=False)
    assert [r.key for r in result.failed] == ["bad"]
    assert "ValueError" in result.failed[0].error
    # Healthy cells still report.
    assert result.as_table(strict=False) == {"good-1": {"ok": 1.0},
                                             "good-2": {"ok": 1.0}}
    with pytest.raises(SweepError, match="bad"):
        result.as_table()


def test_worker_death_fails_the_cell_not_the_run():
    # os._exit(13) kills the worker process outright (no exception, no
    # cleanup) — the engine must convert that into failed cells and
    # return, never hang. Pool breakage may take neighbouring in-flight
    # cells down with the dead one; the contract is completion +
    # attribution, not isolation.
    sweep = Sweep(
        name="test_die",
        run_cell=_flaky_cell,
        cells=[
            Cell(key="doomed", params={"mode": "die"}),
            Cell(key="bystander", params={"mode": "ok"}),
        ],
        master_seed=9,
    )
    result = run_sweep(sweep, workers=2, cache=False)
    assert len(result.results) == 2
    assert "doomed" in {r.key for r in result.failed}
    with pytest.raises(SweepError):
        result.raise_failures()


# --------------------------------------------------------------- replicates

def test_replicates_aggregate_to_mean_and_spread():
    sweep = _arith_sweep()
    result = run_sweep(sweep, workers=0, replicates=3, cache=False)
    assert len(result.results) == 3 * len(sweep.cells)
    table = result.as_table()
    cell = table[(1, 0.5)]
    stat = cell["y"]
    assert isinstance(stat, ReplicateStat)
    assert stat.n == 3
    # Replicate 0 runs the canonical pinned seed; its value equals the
    # single-run table exactly.
    single = run_sweep(sweep, workers=0, replicates=1, cache=False)
    r0 = [r for r in result.results if r.key == (1, 0.5) and r.replicate == 0]
    assert r0[0].seed == 4501
    assert r0[0].value == single.as_table()[(1, 0.5)]
    # The mean is the mean of the actual replicate values.
    values = sorted(
        r.value["y"] for r in result.results if r.key == (1, 0.5)
    )
    assert stat.mean == pytest.approx(sum(values) / 3)
    assert str(stat) == f"{stat.mean:.3f} ±{stat.spread:.3f}"


def test_replicate_stats_helper():
    stat = replicate_stats([1.0, 2.0, 3.0])
    assert stat.mean == pytest.approx(2.0)
    assert stat.spread == pytest.approx(1.0)
    assert float(stat) == stat.mean
    assert replicate_stats([5.0]).spread == 0.0
    with pytest.raises(ValueError):
        replicate_stats([])


# ----------------------------------------------------------------- counters

def test_counters_cross_the_process_boundary_and_aggregate():
    sweep = Sweep(
        name="test_counters",
        run_cell=_sim_cell,
        cells=[Cell(key=t, params={"ticks": t}) for t in (3, 5)],
        master_seed=2,
    )
    for workers in (0, 2):
        result = run_sweep(sweep, workers=workers, cache=False)
        assert result.counters["sim.events"] == 8.0
        assert "timer.fired" in result.counters
        stats = result.stats()
        assert stats["sweep.cells"] == 2.0
        assert stats["sweep.executed"] == 2.0
        assert stats["sweep.workers"] == float(workers)


def test_counters_of_walks_scenarios():
    from repro.analysis.scenarios import line_scenario

    scn = line_scenario(11, n_hops=1)
    scn.run_for(1.0)
    counters = counters_of(scn)
    assert counters["sim.events"] == scn.sim.events_processed
    assert counters_of(scn, scn.overlay, scn.sim) == counters  # dedup


# -------------------------------------------------------------- environment

def test_resolve_workers_precedence(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV, "3")
    assert resolve_workers() == 3
    assert resolve_workers(1) == 1  # explicit beats env
    assert resolve_workers(0) == 0  # zero forces serial
    monkeypatch.delenv(WORKERS_ENV)
    assert resolve_workers() >= 0  # cpu-count heuristic, never negative
    with pytest.raises(ValueError):
        resolve_workers(-1)


def test_grid_helper_is_cartesian_in_declaration_order():
    assert grid(a=[1, 2], b=["x", "y"]) == [
        {"a": 1, "b": "x"}, {"a": 1, "b": "y"},
        {"a": 2, "b": "x"}, {"a": 2, "b": "y"},
    ]


# ------------------------------------------------------- PR-5 regressions

def _fresh_fingerprint(root):
    """source_fingerprint with the in-process memoization bypassed —
    the memo is correct in production (the tree cannot change under a
    running process) but these tests edit the tree mid-test."""
    from repro.analysis.runner import _FINGERPRINT_CACHE

    _FINGERPRINT_CACHE.clear()
    return source_fingerprint(root=root)


def test_source_fingerprint_covers_non_python_files(tmp_path):
    """Regression: the fingerprint hashed only ``*.py``, so editing a
    bundled data file silently kept serving stale cached cells."""
    root = tmp_path / "pkg"
    root.mkdir()
    (root / "mod.py").write_text("A = 1\n")
    (root / "topo.json").write_text('{"nodes": 3}\n')
    before = _fresh_fingerprint(root)
    (root / "topo.json").write_text('{"nodes": 4}\n')
    assert _fresh_fingerprint(root) != before


def test_source_fingerprint_ignores_bytecode_churn(tmp_path):
    root = tmp_path / "pkg"
    (root / "__pycache__").mkdir(parents=True)
    (root / "mod.py").write_text("A = 1\n")
    before = _fresh_fingerprint(root)
    (root / "__pycache__" / "mod.cpython-311.pyc").write_bytes(b"\x00\x01")
    (root / "mod.pyc").write_bytes(b"\x02")
    assert _fresh_fingerprint(root) == before


def test_fingerprint_extras_folds_in_bench_util(tmp_path):
    from repro.analysis.runner import fingerprint_extras

    assert fingerprint_extras(None) == ()
    bench = tmp_path / "bench_x.py"
    bench.write_text("pass\n")
    assert fingerprint_extras(str(bench)) == (str(bench),)
    util = tmp_path / "bench_util.py"
    util.write_text("pass\n")
    assert fingerprint_extras(str(bench)) == (str(bench), str(util))


def _none_cell(seed: int, bad: bool):
    """A cell that 'succeeds' but returns garbage when ``bad``."""
    if bad:
        return None
    return {"m": float(seed % 7)}


def test_aggregate_skips_non_dict_replicate_values():
    """Regression: a replicate that returned ``None`` (success, garbage
    value) crashed ``_aggregate`` with an AttributeError instead of
    being skipped."""
    from repro.analysis.sweep import _aggregate

    merged = _aggregate([{"m": 1.0}, None, {"m": 3.0}])
    stat = merged["m"]
    assert isinstance(stat, ReplicateStat)
    assert stat.mean == pytest.approx(2.0)
    assert stat.n == 2


def test_as_table_non_strict_skips_failed_replicates():
    sweep = Sweep(
        name="flaky-agg",
        run_cell=_flaky_cell,
        cells=[Cell(key="good", params={"mode": "ok"}),
               Cell(key="bad", params={"mode": "raise"})],
    )
    result = run_sweep(sweep, workers=0, cache=False, replicates=2)
    assert len(result.failed) == 2  # both replicates of the bad cell
    assert result.stats()["sweep.failed"] == 2.0
    with pytest.raises(SweepError):
        result.as_table()
    table = result.as_table(strict=False)
    assert list(table) == ["good"]
    assert isinstance(table["good"]["ok"], ReplicateStat)
