"""Sweep engine: serial/parallel equivalence, seeds, cache, failures.

The engine's contract (DESIGN.md "Experiment engine"):

* ``workers=0`` and ``workers=N`` produce byte-identical tables — a
  cell is a pure function of ``(seed, params)``, so where it runs can
  never change what it computes;
* per-cell seeds derive via blake2b of ``"{master}:{key}"`` (the
  RngRegistry discipline, distinct hash family) and are stable forever;
* the result cache is keyed by cell spec + source fingerprint — hits
  are byte-identical, fingerprint moves invalidate everything;
* failures surface as failed *cells*, never hung *runs* — including a
  worker process dying outright.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis.metrics import ReplicateStat, replicate_stats
from repro.analysis.runner import (
    SweepCache,
    WORKERS_ENV,
    resolve_workers,
    run_sweep,
    source_fingerprint,
)
from repro.analysis.sweep import (
    Cell,
    Sweep,
    SweepError,
    cell_seed,
    counters_of,
    grid,
    with_counters,
)


# Cells must be top-level functions: workers unpickle them by reference.

def _arith_cell(seed: int, x: int, scale: float):
    rnd = (seed % 9973) / 9973.0
    return {"y": x * scale + rnd, "x": x}


def _sim_cell(seed: int, ticks: int):
    from repro.sim.events import Simulator

    sim = Simulator()
    for i in range(ticks):
        sim.schedule(0.001 * (i + 1), lambda: None)
    sim.run(until=1.0)
    return with_counters({"ticks": ticks}, sim)


def _flaky_cell(seed: int, mode: str):
    if mode == "raise":
        raise ValueError(f"boom seed={seed}")
    if mode == "die":
        os._exit(13)
    return {"ok": 1.0}


def _arith_sweep(pin: int | None = 4501) -> Sweep:
    return Sweep(
        name="test_arith",
        run_cell=_arith_cell,
        cells=[Cell(key=(x, s), params={"x": x, "scale": s}, seed=pin)
               for x in (1, 2, 3) for s in (0.5, 2.0)],
        master_seed=4500,
    )


def _dump(result) -> str:
    """Canonical bytes of a table (keys stringified for JSON)."""
    table = result.as_table()
    return json.dumps({str(k): v for k, v in table.items()}, sort_keys=True)


# ------------------------------------------------------- serial == parallel

def test_serial_and_parallel_tables_are_byte_identical():
    sweep = _arith_sweep()
    serial = run_sweep(sweep, workers=0, cache=False)
    pooled = run_sweep(sweep, workers=2, cache=False)
    assert _dump(serial) == _dump(pooled)
    assert list(serial.as_table()) == [c.key for c in sweep.cells]
    assert list(pooled.as_table()) == [c.key for c in sweep.cells]
    assert serial.executed == len(sweep.cells)
    assert pooled.executed == len(sweep.cells)


def test_parallel_respects_declared_order_not_completion_order():
    # Cells with very different costs: completion order differs from
    # declared order, collection must not.
    sweep = Sweep(
        name="test_order",
        run_cell=_sim_cell,
        cells=[Cell(key=t, params={"ticks": t}) for t in (500, 1, 200, 5)],
        master_seed=1,
    )
    pooled = run_sweep(sweep, workers=2, cache=False)
    assert list(pooled.as_table()) == [500, 1, 200, 5]


# -------------------------------------------------------------------- seeds

def test_cell_seed_is_stable_forever():
    # Pinned: these exact values are the cache-compatibility contract.
    assert cell_seed(7, ("a", 1)) == 18109028095814720206
    assert cell_seed(7, "a|1") == 18109028095814720206  # label form
    assert cell_seed(7, ("a", 1), replicate=1) != cell_seed(7, ("a", 1))


def test_cell_seed_varies_by_master_key_and_replicate():
    seeds = {
        cell_seed(1, "k"), cell_seed(2, "k"), cell_seed(1, "j"),
        cell_seed(1, "k", 1), cell_seed(1, "k", 2),
    }
    assert len(seeds) == 5


def test_pinned_seed_is_used_verbatim_for_replicate_zero():
    sweep = _arith_sweep(pin=4501)
    cell = sweep.cells[0]
    assert sweep.seed_for(cell, 0) == 4501
    assert sweep.seed_for(cell, 1) == cell_seed(4501, cell.key, 1)
    unpinned = _arith_sweep(pin=None)
    assert unpinned.seed_for(unpinned.cells[0], 0) == cell_seed(
        4500, unpinned.cells[0].key
    )


# -------------------------------------------------------------------- cache

def test_cache_hit_miss_and_fingerprint_invalidation(tmp_path):
    sweep = _arith_sweep()
    store = SweepCache(tmp_path)
    cold = run_sweep(sweep, workers=0, cache=store, fingerprint="v1")
    assert (cold.executed, cold.cached) == (len(sweep.cells), 0)
    warm = run_sweep(sweep, workers=0, cache=store, fingerprint="v1")
    assert (warm.executed, warm.cached) == (0, len(sweep.cells))
    assert _dump(warm) == _dump(cold)  # hits are byte-identical
    # A moved source fingerprint makes every entry unreachable.
    fresh = run_sweep(sweep, workers=0, cache=store, fingerprint="v2")
    assert (fresh.executed, fresh.cached) == (len(sweep.cells), 0)


def test_cache_disabled_always_executes(tmp_path):
    sweep = _arith_sweep()
    for _ in range(2):
        result = run_sweep(sweep, workers=0, cache=False)
        assert result.cached == 0


def test_source_fingerprint_tracks_extra_files(tmp_path):
    base = source_fingerprint()
    assert base == source_fingerprint()  # memoized, stable in-process
    extra = tmp_path / "bench_mod.py"
    extra.write_text("A = 1\n")
    with_extra = source_fingerprint((str(extra),))
    assert with_extra != base


# ----------------------------------------------------------------- failures

def test_in_cell_exception_becomes_failed_cell_not_crash():
    sweep = Sweep(
        name="test_raise",
        run_cell=_flaky_cell,
        cells=[
            Cell(key="good-1", params={"mode": "ok"}),
            Cell(key="bad", params={"mode": "raise"}),
            Cell(key="good-2", params={"mode": "ok"}),
        ],
        master_seed=9,
    )
    result = run_sweep(sweep, workers=0, cache=False)
    assert [r.key for r in result.failed] == ["bad"]
    assert "ValueError" in result.failed[0].error
    # Healthy cells still report.
    assert result.as_table(strict=False) == {"good-1": {"ok": 1.0},
                                             "good-2": {"ok": 1.0}}
    with pytest.raises(SweepError, match="bad"):
        result.as_table()


def test_worker_death_fails_the_cell_not_the_run():
    # os._exit(13) kills the worker process outright (no exception, no
    # cleanup) — the engine must convert that into failed cells and
    # return, never hang. Pool breakage may take neighbouring in-flight
    # cells down with the dead one; the contract is completion +
    # attribution, not isolation.
    sweep = Sweep(
        name="test_die",
        run_cell=_flaky_cell,
        cells=[
            Cell(key="doomed", params={"mode": "die"}),
            Cell(key="bystander", params={"mode": "ok"}),
        ],
        master_seed=9,
    )
    result = run_sweep(sweep, workers=2, cache=False)
    assert len(result.results) == 2
    assert "doomed" in {r.key for r in result.failed}
    with pytest.raises(SweepError):
        result.raise_failures()


# --------------------------------------------------------------- replicates

def test_replicates_aggregate_to_mean_and_spread():
    sweep = _arith_sweep()
    result = run_sweep(sweep, workers=0, replicates=3, cache=False)
    assert len(result.results) == 3 * len(sweep.cells)
    table = result.as_table()
    cell = table[(1, 0.5)]
    stat = cell["y"]
    assert isinstance(stat, ReplicateStat)
    assert stat.n == 3
    # Replicate 0 runs the canonical pinned seed; its value equals the
    # single-run table exactly.
    single = run_sweep(sweep, workers=0, replicates=1, cache=False)
    r0 = [r for r in result.results if r.key == (1, 0.5) and r.replicate == 0]
    assert r0[0].seed == 4501
    assert r0[0].value == single.as_table()[(1, 0.5)]
    # The mean is the mean of the actual replicate values.
    values = sorted(
        r.value["y"] for r in result.results if r.key == (1, 0.5)
    )
    assert stat.mean == pytest.approx(sum(values) / 3)
    assert str(stat) == f"{stat.mean:.3f} ±{stat.spread:.3f}"


def test_replicate_stats_helper():
    stat = replicate_stats([1.0, 2.0, 3.0])
    assert stat.mean == pytest.approx(2.0)
    assert stat.spread == pytest.approx(1.0)
    assert float(stat) == stat.mean
    assert replicate_stats([5.0]).spread == 0.0
    with pytest.raises(ValueError):
        replicate_stats([])


# ----------------------------------------------------------------- counters

def test_counters_cross_the_process_boundary_and_aggregate():
    sweep = Sweep(
        name="test_counters",
        run_cell=_sim_cell,
        cells=[Cell(key=t, params={"ticks": t}) for t in (3, 5)],
        master_seed=2,
    )
    for workers in (0, 2):
        result = run_sweep(sweep, workers=workers, cache=False)
        assert result.counters["sim.events"] == 8.0
        assert "timer.fired" in result.counters
        stats = result.stats()
        assert stats["sweep.cells"] == 2.0
        assert stats["sweep.executed"] == 2.0
        assert stats["sweep.workers"] == float(workers)


def test_counters_of_walks_scenarios():
    from repro.analysis.scenarios import line_scenario

    scn = line_scenario(11, n_hops=1)
    scn.run_for(1.0)
    counters = counters_of(scn)
    assert counters["sim.events"] == scn.sim.events_processed
    assert counters_of(scn, scn.overlay, scn.sim) == counters  # dedup


# -------------------------------------------------------------- environment

def test_resolve_workers_precedence(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV, "3")
    assert resolve_workers() == 3
    assert resolve_workers(1) == 1  # explicit beats env
    assert resolve_workers(0) == 0  # zero forces serial
    monkeypatch.delenv(WORKERS_ENV)
    assert resolve_workers() >= 0  # cpu-count heuristic, never negative
    with pytest.raises(ValueError):
        resolve_workers(-1)


def test_grid_helper_is_cartesian_in_declaration_order():
    assert grid(a=[1, 2], b=["x", "y"]) == [
        {"a": 1, "b": "x"}, {"a": 1, "b": "y"},
        {"a": 2, "b": "x"}, {"a": 2, "b": "y"},
    ]


# ------------------------------------------------------- PR-5 regressions

def _fresh_fingerprint(root):
    """source_fingerprint with the in-process memoization bypassed —
    the memo is correct in production (the tree cannot change under a
    running process) but these tests edit the tree mid-test."""
    from repro.analysis.runner import _FINGERPRINT_CACHE

    _FINGERPRINT_CACHE.clear()
    return source_fingerprint(root=root)


def test_source_fingerprint_covers_non_python_files(tmp_path):
    """Regression: the fingerprint hashed only ``*.py``, so editing a
    bundled data file silently kept serving stale cached cells."""
    root = tmp_path / "pkg"
    root.mkdir()
    (root / "mod.py").write_text("A = 1\n")
    (root / "topo.json").write_text('{"nodes": 3}\n')
    before = _fresh_fingerprint(root)
    (root / "topo.json").write_text('{"nodes": 4}\n')
    assert _fresh_fingerprint(root) != before


def test_source_fingerprint_ignores_bytecode_churn(tmp_path):
    root = tmp_path / "pkg"
    (root / "__pycache__").mkdir(parents=True)
    (root / "mod.py").write_text("A = 1\n")
    before = _fresh_fingerprint(root)
    (root / "__pycache__" / "mod.cpython-311.pyc").write_bytes(b"\x00\x01")
    (root / "mod.pyc").write_bytes(b"\x02")
    assert _fresh_fingerprint(root) == before


def test_fingerprint_extras_folds_in_bench_util(tmp_path):
    from repro.analysis.runner import fingerprint_extras

    assert fingerprint_extras(None) == ()
    bench = tmp_path / "bench_x.py"
    bench.write_text("pass\n")
    assert fingerprint_extras(str(bench)) == (str(bench),)
    util = tmp_path / "bench_util.py"
    util.write_text("pass\n")
    assert fingerprint_extras(str(bench)) == (str(bench), str(util))


def _none_cell(seed: int, bad: bool):
    """A cell that 'succeeds' but returns garbage when ``bad``."""
    if bad:
        return None
    return {"m": float(seed % 7)}


def test_aggregate_skips_non_dict_replicate_values():
    """Regression: a replicate that returned ``None`` (success, garbage
    value) crashed ``_aggregate`` with an AttributeError instead of
    being skipped."""
    from repro.analysis.sweep import _aggregate

    merged = _aggregate([{"m": 1.0}, None, {"m": 3.0}])
    stat = merged["m"]
    assert isinstance(stat, ReplicateStat)
    assert stat.mean == pytest.approx(2.0)
    assert stat.n == 2


def test_as_table_non_strict_skips_failed_replicates():
    sweep = Sweep(
        name="flaky-agg",
        run_cell=_flaky_cell,
        cells=[Cell(key="good", params={"mode": "ok"}),
               Cell(key="bad", params={"mode": "raise"})],
    )
    result = run_sweep(sweep, workers=0, cache=False, replicates=2)
    assert len(result.failed) == 2  # both replicates of the bad cell
    assert result.stats()["sweep.failed"] == 2.0
    with pytest.raises(SweepError):
        result.as_table()
    table = result.as_table(strict=False)
    assert list(table) == ["good"]
    assert isinstance(table["good"]["ok"], ReplicateStat)


# ------------------------------------------------ PR-10 campaign engine

def _pid_cell(seed: int, x: int):
    return {"pid": float(os.getpid()), "x": float(x)}


def _pid_sweep(n: int = 6, name: str = "test_pids") -> Sweep:
    return Sweep(
        name=name,
        run_cell=_pid_cell,
        cells=[Cell(key=i, params={"x": i}) for i in range(n)],
        master_seed=7,
    )


def test_workers_are_persistent_across_cells_and_sweeps():
    """The pool is warm and module-level: one worker runs many cells,
    and a second ``run_sweep`` call reuses the same worker processes
    instead of paying pool + import setup again."""
    from repro.analysis.runner import shutdown_pool, warm_pool

    shutdown_pool()  # deterministic start: this test owns the pool
    try:
        assert warm_pool(2) == 2
        first = run_sweep(_pid_sweep(), workers=2, cache=False, journal=False)
        pids1 = {r.value["pid"] for r in first.results}
        assert len(pids1) <= 2 < len(first.results)  # reuse across cells
        second = run_sweep(_pid_sweep(), workers=2, cache=False, journal=False)
        pids2 = {r.value["pid"] for r in second.results}
        assert pids1 & pids2  # reuse across run_sweep calls
    finally:
        shutdown_pool()


def test_pool_is_rebuilt_after_worker_death():
    """A BrokenProcessPool poisons the executor; the next parallel run
    must get a fresh pool and succeed, not inherit the corpse."""
    from repro.analysis.runner import shutdown_pool

    doomed = Sweep(
        name="test_die_rebuild",
        run_cell=_flaky_cell,
        cells=[Cell(key="doomed", params={"mode": "die"})],
        master_seed=9,
    )
    try:
        broken = run_sweep(doomed, workers=2, cache=False, journal=False)
        assert broken.failed
        healthy = run_sweep(_pid_sweep(), workers=2, cache=False,
                            journal=False)
        healthy.raise_failures()
        assert healthy.executed == len(healthy.results)
    finally:
        shutdown_pool()


def test_batched_tables_are_byte_identical_to_serial():
    sweep = _arith_sweep()
    serial = run_sweep(sweep, workers=0, cache=False)
    for batch in (2, 3, len(sweep.cells)):
        batched = run_sweep(sweep, workers=2, cache=False, journal=False,
                            batch=batch)
        assert _dump(batched) == _dump(serial)
        assert list(batched.as_table()) == [c.key for c in sweep.cells]


def test_auto_batch_heuristic():
    from repro.analysis.runner import MAX_BATCH, _auto_batch

    assert _auto_batch(4, 8) == 1       # grid no wider than the pool
    assert _auto_batch(8, 2) == 1       # still ~4 tasks per worker
    assert _auto_batch(1000, 4) == 63   # amortize submit/IPC overhead
    assert _auto_batch(10**6, 8) == MAX_BATCH  # bounded loss granularity


# -------------------------------------------------- journal and resume

def test_journal_resume_reruns_only_missing_cells(tmp_path):
    """Kill-and-resume: truncate the journal (plus a torn tail, as a
    real SIGKILL leaves) and check the resumed run serves the surviving
    entries and simulates exactly the missing cells, byte-identically."""
    sweep = _arith_sweep()
    jpath = tmp_path / "journal.jsonl"
    full = run_sweep(sweep, workers=0, cache=False, journal=jpath,
                     fingerprint="fp")
    lines = jpath.read_text().splitlines()
    assert len(lines) == len(sweep.cells)
    jpath.write_text("\n".join(lines[:3]) + "\n" + '{"digest": "to')
    resumed = run_sweep(sweep, workers=0, cache=False, journal=jpath,
                        fingerprint="fp", resume=True)
    assert resumed.journaled == 3
    assert resumed.executed == len(sweep.cells) - 3
    assert _dump(resumed) == _dump(full)
    assert resumed.stats()["sweep.journaled"] == 3.0
    # The resumed journal is complete again: a second resume simulates 0.
    again = run_sweep(sweep, workers=0, cache=False, journal=jpath,
                      fingerprint="fp", resume=True)
    assert (again.executed, again.journaled) == (0, len(sweep.cells))


def test_journal_moves_with_the_source_fingerprint(tmp_path):
    """A journal written under one fingerprint must not serve cells
    after the source tree changes — same contract as the cache."""
    sweep = _arith_sweep()
    jpath = tmp_path / "journal.jsonl"
    run_sweep(sweep, workers=0, cache=False, journal=jpath, fingerprint="v1")
    stale = run_sweep(sweep, workers=0, cache=False, journal=jpath,
                      fingerprint="v2", resume=True)
    assert (stale.executed, stale.journaled) == (len(sweep.cells), 0)


def test_fresh_run_truncates_journal_resume_appends(tmp_path):
    sweep = _arith_sweep()
    jpath = tmp_path / "journal.jsonl"
    run_sweep(sweep, workers=0, cache=False, journal=jpath, fingerprint="fp")
    run_sweep(sweep, workers=0, cache=False, journal=jpath, fingerprint="fp")
    # Second non-resume run truncated: one record per cell, not two.
    assert len(jpath.read_text().splitlines()) == len(sweep.cells)


def _ki_cell(seed: int, trip_file: str = "", name: str = ""):
    if trip_file and name == "trip" and os.path.exists(trip_file):
        raise KeyboardInterrupt
    return {"name_len": float(len(name))}


def test_interrupt_returns_partial_result_and_resume_completes(tmp_path):
    """Satellite: Ctrl-C mid-sweep keeps every completed cell (persisted
    to the journal the moment it landed), marks the rest failed on a
    partial ``interrupted`` result, and ``resume`` finishes the job."""
    flag = tmp_path / "flag"
    flag.write_text("1")
    jpath = tmp_path / "journal.jsonl"
    cells = [Cell(key=k, params={"trip_file": str(flag), "name": k})
             for k in ("a", "trip", "b")]
    sweep = Sweep(name="test_interrupt", run_cell=_ki_cell, cells=cells,
                  master_seed=3)
    partial = run_sweep(sweep, workers=0, cache=False, journal=jpath,
                        fingerprint="fp")
    assert partial.interrupted
    assert len(partial.results) == 3
    assert partial.executed == 1  # "a" landed before the interrupt
    assert {r.key for r in partial.failed} == {"trip", "b"}
    assert all("interrupted" in r.error for r in partial.failed)
    flag.unlink()
    resumed = run_sweep(sweep, workers=0, cache=False, journal=jpath,
                        fingerprint="fp", resume=True)
    assert not resumed.interrupted
    resumed.raise_failures()
    assert resumed.journaled == 1  # "a" served from the journal
    assert resumed.executed == 2  # the interrupted cells re-ran


def test_interrupt_in_pool_cancels_and_returns_partial(tmp_path):
    """A KeyboardInterrupt raised in a worker propagates to the
    collector, which cancels pending work and returns a partial result
    instead of hanging or discarding completed cells."""
    from repro.analysis.runner import shutdown_pool

    flag = tmp_path / "flag"
    flag.write_text("1")
    cells = [Cell(key=k, params={"trip_file": str(flag), "name": k})
             for k in ("a", "trip", "b", "c")]
    sweep = Sweep(name="test_pool_interrupt", run_cell=_ki_cell, cells=cells,
                  master_seed=3)
    try:
        partial = run_sweep(sweep, workers=2, cache=False, journal=False)
        assert partial.interrupted
        assert len(partial.results) == 4
        assert "trip" in {r.key for r in partial.failed}
    finally:
        shutdown_pool()


# ------------------------------------------------------ runner bugfixes

def test_store_tmp_names_are_unique_and_never_leak(tmp_path):
    """Regression: ``path.with_suffix(".tmp")`` was shared by every
    concurrent writer of one digest — interleaved writes could publish
    a torn file. Tmp names are now unique per process *and* per call,
    and no tmp droppings survive a store."""
    from repro.analysis.runner import _unique_tmp

    target = tmp_path / "abc123.json"
    names = {_unique_tmp(target) for _ in range(50)}
    assert len(names) == 50
    assert all(n.parent == target.parent for n in names)  # same fs: atomic
    sweep = _arith_sweep()
    store = SweepCache(tmp_path)
    for _ in range(2):
        run_sweep(sweep, workers=0, cache=store, fingerprint="fp")
    leftovers = [p for p in tmp_path.rglob("*.tmp")]
    assert leftovers == []


def test_workers_env_non_integer_raises_clear_error(monkeypatch):
    """Regression: a non-integer REPRO_BENCH_WORKERS crashed with a
    bare ``ValueError: invalid literal`` that never named the knob."""
    monkeypatch.setenv(WORKERS_ENV, "lots")
    with pytest.raises(ValueError, match=r"REPRO_BENCH_WORKERS.*'lots'"):
        resolve_workers()


def _guard_cell(seed: int, inner: bool = False, warm_key: str | None = None):
    from repro.analysis.runner import WARMSTART_FRESH_ENV

    env = os.environ.get(WARMSTART_FRESH_ENV, "unset")
    if inner:
        nested = Sweep(
            name="guard-inner",
            run_cell=_guard_cell,
            cells=[Cell(key="i", params={}, warm_key="wk-inner")],
            master_seed=1,
        )
        run_sweep(nested, workers=0, cache=False, journal=False)
    return {"env": env}


def test_warmstart_fresh_guard_is_reentrant(monkeypatch):
    """Regression: the flat save/restore around fresh-forced sweeps
    clobbered the user's value when a sweep ran inside another sweep's
    scope — the guard must restore the original only at depth 0."""
    from repro.analysis.runner import WARMSTART_FRESH_ENV, _FRESH_GUARD

    assert _FRESH_GUARD.depth == 0
    monkeypatch.setenv(WARMSTART_FRESH_ENV, "0")
    outer = Sweep(
        name="guard-outer",
        run_cell=_guard_cell,
        cells=[Cell(key="o", params={"inner": True}, warm_key="wk-outer")],
        master_seed=1,
    )
    result = run_sweep(outer, workers=0, cache=False, journal=False)
    result.raise_failures()
    # Forced on while the (nested) sweeps ran...
    assert result.as_table()["o"]["env"] == "1"
    # ...and the pre-existing value survived both scopes unwinding.
    assert os.environ[WARMSTART_FRESH_ENV] == "0"
    assert _FRESH_GUARD.depth == 0


# --------------------------------------------------------- coordinator

def test_coordinator_snapshot_and_status_file(tmp_path):
    from repro.analysis.coordinator import Coordinator
    from repro.analysis.sweep import CellResult

    ticks = iter(range(100))
    lines: list[str] = []
    seen: list[int] = []
    status = tmp_path / "status.json"
    coord = Coordinator(status_path=status, progress=True, interval_s=0.0,
                        on_cell=lambda c: seen.append(c.done),
                        out=lines.append, clock=lambda: float(next(ticks)))
    coord.start("camp", total=4, workers=2)
    coord.record(CellResult(key="a", replicate=0, seed=1,
                            value={}, wall_s=0.5), pid=101)
    coord.record(CellResult(key="b", replicate=0, seed=2, cached=True), pid=101)
    coord.record(CellResult(key="c", replicate=0, seed=3, journaled=True))
    coord.record(CellResult(key="d", replicate=0, seed=4, error="boom"),
                 pid=102)
    coord.pool_restart()
    coord.finish()
    snap = json.loads(status.read_text())
    assert (snap["done"], snap["executed"], snap["cached"],
            snap["journaled"], snap["failed"]) == (4, 1, 1, 1, 1)
    assert snap["pending"] == 0 and snap["finished"]
    assert snap["worker_pids"] == [101, 102]
    assert snap["worker_restarts"] == 1  # the explicit pool rebuild
    assert snap["slowest_cells"][0]["cell"] == "a#r0"
    assert seen == [1, 2, 3, 4]  # on_cell hook fired per landed cell
    assert any("camp" in line and "4/4" in line for line in lines)
    assert not list(tmp_path.glob("*.tmp"))


def test_campaign_options_scopes_resume(tmp_path):
    from repro.analysis.runner import _CAMPAIGN_OPTIONS, campaign_options

    sweep = _arith_sweep()
    jpath = tmp_path / "journal.jsonl"
    run_sweep(sweep, workers=0, cache=False, journal=jpath, fingerprint="fp")
    with campaign_options(resume=True):
        resumed = run_sweep(sweep, workers=0, cache=False, journal=jpath,
                            fingerprint="fp")
        assert (resumed.executed, resumed.journaled) == (0, len(sweep.cells))
    assert _CAMPAIGN_OPTIONS["resume"] is False  # restored on exit
