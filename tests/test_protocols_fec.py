"""The FEC extension protocol: zero-RTT single-loss recovery per block,
fixed 1/k overhead, defeated by in-block bursts."""

import pytest

from repro.analysis.metrics import flow_stats
from repro.analysis.workloads import CbrSource
from repro.core.message import Address, LINK_FEC, ServiceSpec
from repro.protocols import LinkProtocol, register_protocol
from tests.conftest import make_two_node_line


def _stream(scn, count=800, rate=200.0, size=1000):
    got = []
    scn.overlay.client("h1", 7, on_message=lambda m: got.append(scn.sim.now - m.sent_at))
    tx = scn.overlay.client("h0")
    source = CbrSource(scn.sim, tx, Address("h1", 7), rate_pps=rate, size=size,
                       service=ServiceSpec(link=LINK_FEC)).start()
    scn.run_for(count / rate)
    source.stop()
    scn.run_for(1.0)
    stats = flow_stats(scn.overlay.trace, source.flow, "h1:7")
    return got, stats, source


def test_lossless_stream_unaffected():
    scn = make_two_node_line(seed=501)
    got, stats, __ = _stream(scn, count=200)
    assert stats.delivery_ratio == 1.0
    assert scn.overlay.counters.get("fec-recovered") == 0
    assert scn.overlay.counters.get("fec-parity-sent") > 0


def test_recovers_isolated_losses_without_round_trip():
    scn = make_two_node_line(seed=502, loss_rate=0.03, hop_delay=0.020)
    got, stats, __ = _stream(scn)
    # p=0.03, k=8: residual loss ~ p * P(2nd loss in block or parity
    # lost) ~ 0.03 * 0.22 ~ 0.7%, so ~99.3% delivery.
    assert stats.delivery_ratio > 0.985
    assert scn.overlay.counters.get("fec-recovered") > 0
    # The FEC-recovered packets waited at most a block (k packets at the
    # send rate), never a retransmission round trip: with 20 ms one-way,
    # ARQ recovery would exceed 60 ms.
    assert stats.latency.max < 0.061


def test_fixed_overhead_one_over_k():
    scn = make_two_node_line(seed=503)
    __, __, source = _stream(scn, count=400)
    parities = scn.overlay.counters.get("fec-parity-sent")
    assert parities == pytest.approx(source.sent / 8, abs=1)


def test_bursts_within_a_block_defeat_parity():
    from repro.analysis.scenarios import line_scenario
    from repro.net.loss import GilbertElliottLoss

    scn = line_scenario(
        504, n_hops=1, hop_delay=0.020,
        loss_factory=lambda: GilbertElliottLoss(
            mean_good=0.3, mean_bad=0.06, bad_loss=0.9
        ),
    )
    __, stats, __ = _stream(scn)
    assert scn.overlay.counters.get("fec-unrecoverable") > 0
    assert stats.delivery_ratio < 0.99


def test_registering_a_custom_protocol():
    """The architecture's extension point works for third-party code."""

    class EchoCountProtocol(LinkProtocol):
        name = "echo-count"

        def send(self, msg):
            self.counters.add("echo-sent")
            self.transmit("data", msg)
            return True

        def on_frame(self, frame):
            if frame.msg is not None:
                self.deliver_up(frame.msg)

    register_protocol(EchoCountProtocol)
    scn = make_two_node_line(seed=505)
    got = []
    scn.overlay.client("h1", 7, on_message=got.append)
    scn.overlay.client("h0").send(
        Address("h1", 7), service=ServiceSpec(link="echo-count")
    )
    scn.run_for(1.0)
    assert len(got) == 1
    assert scn.overlay.counters.get("echo-sent") == 1


def test_register_protocol_requires_name():
    class Nameless(LinkProtocol):
        name = ""

    with pytest.raises(ValueError):
        register_protocol(Nameless)
