"""The monitoring analysis engine: pattern-based problem detection."""

import math

from repro.analysis.scenarios import continental_scenario
from repro.apps.monitoring import AnalysisEngine, MonitoredEndpoint


def _noisy_reading(base=50.0, amplitude=1.0):
    def fn(seq):
        return base + amplitude * math.sin(seq / 3.0)

    return fn


def _deploy(scn, n=3, rate=20.0):
    engine = AnalysisEngine(scn.overlay, "site-WAS", threshold=4.0)
    cities = ["SEA", "LAX", "DAL", "CHI"]
    endpoints = [
        MonitoredEndpoint(
            scn.overlay, f"site-{cities[i]}", f"ep{i}", 9200 + i,
            rate_pps=rate, reading_fn=_noisy_reading(),
        )
        for i in range(n)
    ]
    scn.run_for(0.5)
    for ep in endpoints:
        ep.start()
    return engine, endpoints


def test_healthy_system_raises_no_alarms():
    scn = continental_scenario(seed=1601)
    engine, __ = _deploy(scn)
    scn.run_for(10.0)
    assert engine.anomalies == []


def test_reading_spike_is_flagged_on_the_right_endpoint():
    scn = continental_scenario(seed=1602)
    engine, endpoints = _deploy(scn)
    scn.run_for(5.0)
    # ep1's sensor goes haywire.
    endpoints[1].reading_fn = lambda seq: 500.0
    scn.run_for(3.0)
    assert engine.anomalies_for("ep1", "reading")
    assert not engine.anomalies_for("ep0", "reading")
    assert not engine.anomalies_for("ep2", "reading")


def test_network_degradation_shows_as_staleness_anomaly():
    """A fiber cut on the monitored path shows up as a staleness
    anomaly before/without any endpoint misbehaving — the 'predict
    problems from patterns' use case."""
    scn = continental_scenario(seed=1603)
    engine, endpoints = _deploy(scn)
    scn.run_for(8.0)
    baseline = len(engine.anomalies_for("ep0", "staleness"))
    # Cut the fiber under SEA's current path toward WAS; the stream
    # reroutes within ~0.3 s, but the longer detour shifts staleness.
    path = scn.overlay.overlay_path("site-SEA", "site-WAS")
    a, b = path[0].removeprefix("site-"), path[1].removeprefix("site-")
    scn.internet.fail_fiber("ispA", a, b)
    scn.internet.fail_fiber("ispB", a, b)
    scn.run_for(5.0)
    flagged = len(engine.anomalies_for("ep0", "staleness"))
    assert flagged > baseline


def test_model_relearns_after_step_change():
    """The EWMA model adapts: after a persistent (non-fault) shift in
    the signal, alarms die down instead of firing forever."""
    scn = continental_scenario(seed=1604)
    engine, endpoints = _deploy(scn, n=1, rate=50.0)
    scn.run_for(5.0)
    endpoints[0].reading_fn = lambda seq: 80.0  # new normal
    scn.run_for(3.0)
    mid = len(engine.anomalies_for("ep0", "reading"))
    assert mid > 0
    scn.run_for(30.0)
    late_window = [
        a for a in engine.anomalies_for("ep0", "reading")
        if a.at > scn.sim.now - 5.0
    ]
    assert late_window == []
