"""Shared-state replicas: topology database, group database, dedup."""

from repro.core.linkstate import DedupCache, GroupDatabase, TopologyDatabase


def test_topology_update_accepts_newer_seq():
    db = TopologyDatabase()
    assert db.update("a", 1, {"b": 0.01})
    assert db.update("a", 2, {"b": 0.02})
    assert db.record("a") == {"b": 0.02}


def test_topology_rejects_stale_and_duplicate():
    db = TopologyDatabase()
    db.update("a", 5, {"b": 0.01})
    assert not db.update("a", 5, {"b": 0.09})
    assert not db.update("a", 4, {"b": 0.09})
    assert db.record("a") == {"b": 0.01}


def test_topology_version_bumps_only_on_change():
    db = TopologyDatabase()
    v0 = db.version
    db.update("a", 1, {})
    assert db.version == v0 + 1
    db.update("a", 1, {})
    assert db.version == v0 + 1


def test_adjacency_excludes_down_links():
    db = TopologyDatabase()
    db.update("a", 1, {"b": 0.01, "c": None})
    adj = db.adjacency()
    assert adj["a"] == {"b": 0.01}


def test_adjacency_is_sorted_and_deterministic():
    db1 = TopologyDatabase()
    db1.update("b", 1, {"a": 1.0})
    db1.update("a", 1, {"b": 1.0})
    db2 = TopologyDatabase()
    db2.update("a", 1, {"b": 1.0})
    db2.update("b", 1, {"a": 1.0})
    assert list(db1.adjacency()) == list(db2.adjacency())
    assert db1.adjacency() == db2.adjacency()


def test_symmetric_adjacency_requires_both_ends():
    db = TopologyDatabase()
    db.update("a", 1, {"b": 1.0})
    db.update("b", 1, {})  # b does not confirm the link
    assert db.symmetric_adjacency()["a"] == {}
    db.update("b", 2, {"a": 1.0})
    assert db.symmetric_adjacency()["a"] == {"b": 1.0}


def test_group_membership():
    db = GroupDatabase()
    db.update("a", 1, ["g1", "g2"])
    db.update("b", 1, ["g1"])
    assert db.members("g1") == ["a", "b"]
    assert db.members("g2") == ["a"]
    assert db.members("none") == []


def test_group_update_replaces_set():
    db = GroupDatabase()
    db.update("a", 1, ["g1"])
    db.update("a", 2, ["g2"])
    assert db.members("g1") == []
    assert db.members("g2") == ["a"]


def test_group_stale_rejected():
    db = GroupDatabase()
    db.update("a", 2, ["g1"])
    assert not db.update("a", 1, ["g2"])
    assert db.groups_of("a") == frozenset({"g1"})


def test_dedup_delivery_once():
    cache = DedupCache(100)
    assert not cache.already_delivered(("f", 1))
    assert cache.already_delivered(("f", 1))
    assert not cache.already_delivered(("f", 2))


def test_dedup_tracks_links_sent():
    cache = DedupCache(100)
    assert cache.links_sent(("f", 1)) == 0
    cache.mark_sent(("f", 1), 0b0101)
    cache.mark_sent(("f", 1), 0b0010)
    assert cache.links_sent(("f", 1)) == 0b0111


def test_dedup_eviction_bounds_memory():
    cache = DedupCache(10)
    for i in range(50):
        cache.already_delivered(("f", i))
        cache.mark_sent(("f", i), 1)
    assert len(cache._delivered) <= 11
    assert len(cache._sent) <= 11


def test_dedup_capacity_validation():
    import pytest

    with pytest.raises(ValueError):
        DedupCache(0)
