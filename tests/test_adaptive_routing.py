"""Adaptive dissemination graphs: redundancy tracks the problem ([2])."""

import pytest

from repro.core.linkstate import GroupDatabase, TopologyDatabase
from repro.core.message import ROUTING_ADAPTIVE, ROUTING_DISJOINT, ServiceSpec
from repro.core.routing import LinkIndex, RoutingService

# A mesh with enough alternatives around both endpoints.
EDGES = [
    ("s", "a", 1.0), ("s", "b", 1.0), ("s", "c", 1.0),
    ("a", "m", 1.0), ("b", "m", 1.0), ("c", "n", 1.0),
    ("m", "n", 1.0), ("m", "x", 1.0), ("n", "y", 1.0),
    ("x", "t", 1.0), ("y", "t", 1.0), ("x", "y", 1.0),
]
LINKS = [(u, v) for u, v, __ in EDGES]


def _service(node="s", cost_overrides=None):
    """RoutingService whose DB first sees baseline costs, then an update
    applying ``cost_overrides`` (simulating measured degradation)."""
    topo = TopologyDatabase()
    nodes: dict = {}
    for a, b, w in EDGES:
        nodes.setdefault(a, {})[b] = w
        nodes.setdefault(b, {})[a] = w
    for origin, nbrs in nodes.items():
        topo.update(origin, 1, nbrs)
    svc = RoutingService(node, topo, GroupDatabase(), LinkIndex(LINKS))
    svc.adjacency()  # record baselines
    if cost_overrides:
        for origin, nbrs in nodes.items():
            updated = {
                v: cost_overrides.get((origin, v), w) for v, w in nbrs.items()
            }
            topo.update(origin, 2, updated)
    return svc


ADAPTIVE = ServiceSpec(routing=ROUTING_ADAPTIVE)


def test_clean_network_uses_two_disjoint_paths():
    svc = _service()
    adaptive_mask = svc.source_bitmask("t", ADAPTIVE)
    disjoint_mask = svc.source_bitmask("t", ServiceSpec(routing=ROUTING_DISJOINT, k=2))
    assert adaptive_mask == disjoint_mask


def test_source_degradation_fans_out_from_source():
    svc = _service(cost_overrides={("s", "a"): 10.0, ("a", "s"): 10.0})
    mask = svc.source_bitmask("t", ADAPTIVE)
    edges = set(svc.links.edges_of_mask(mask))
    source_degree = sum(1 for e in edges if "s" in e)
    assert source_degree == 3, edges  # all of s's links used


def test_destination_degradation_fans_into_destination():
    svc = _service(cost_overrides={("t", "x"): 10.0, ("x", "t"): 10.0})
    mask = svc.source_bitmask("t", ADAPTIVE)
    edges = set(svc.links.edges_of_mask(mask))
    dst_degree = sum(1 for e in edges if "t" in e)
    assert dst_degree == 2  # both of t's links used


def test_both_sides_degraded_uses_full_problem_graph():
    svc = _service(cost_overrides={
        ("s", "a"): 10.0, ("a", "s"): 10.0,
        ("t", "x"): 10.0, ("x", "t"): 10.0,
    })
    mask = svc.source_bitmask("t", ADAPTIVE)
    edges = set(svc.links.edges_of_mask(mask))
    assert sum(1 for e in edges if "s" in e) == 3
    assert sum(1 for e in edges if "t" in e) == 2


def test_down_link_counts_as_degraded():
    svc = _service(cost_overrides={("t", "x"): None, ("x", "t"): None})
    svc.adjacency()  # refresh against the updated records
    assert svc._degraded_at("t")
    assert not svc._degraded_at("s")
    # The adaptive service still routes around the dead link.
    mask = svc.source_bitmask("t", ADAPTIVE)
    edges = set(svc.links.edges_of_mask(mask))
    assert ("x", "t") not in edges and ("t", "x") not in edges
    assert any("t" in e for e in edges)


def test_adaptive_mask_cheaper_than_static_graph_when_clean():
    from repro.core.message import ROUTING_GRAPH

    svc = _service()
    adaptive = bin(svc.source_bitmask("t", ADAPTIVE)).count("1")
    static = bin(svc.source_bitmask("t", ServiceSpec(routing=ROUTING_GRAPH))).count("1")
    assert adaptive < static


def test_degradation_elsewhere_does_not_trigger_redundancy():
    svc = _service(cost_overrides={("m", "n"): 10.0, ("n", "m"): 10.0})
    adaptive_mask = svc.source_bitmask("t", ADAPTIVE)
    disjoint_mask = svc.source_bitmask("t", ServiceSpec(routing=ROUTING_DISJOINT, k=2))
    assert adaptive_mask == disjoint_mask


def test_adaptive_end_to_end_delivery():
    """Adaptive routing works as a live service on a real overlay."""
    from repro.core.message import Address, LINK_SINGLE_STRIKE
    from tests.conftest import make_triangle_overlay

    scn = make_triangle_overlay(seed=601)
    got = []
    scn.overlay.client("hz", 7, on_message=got.append)
    scn.overlay.client("hx").send(
        Address("hz", 7),
        service=ServiceSpec(routing=ROUTING_ADAPTIVE, link=LINK_SINGLE_STRIKE),
    )
    scn.run_for(1.0)
    assert len(got) == 1
