"""Convergence properties of the flooded-state databases: replicas that
see the same set of updates in *any* order end in the same state — the
property that makes flooding + seq numbers a sound replication scheme."""

from hypothesis import given, settings, strategies as st

from repro.core.linkstate import GroupDatabase, TopologyDatabase


@st.composite
def lsu_updates(draw):
    """A batch of LSUs from a handful of origins with assorted seqs."""
    updates = []
    n = draw(st.integers(min_value=1, max_value=20))
    for __ in range(n):
        origin = draw(st.sampled_from(["a", "b", "c", "d"]))
        seq = draw(st.integers(min_value=1, max_value=6))
        nbrs = draw(
            st.dictionaries(
                st.sampled_from(["a", "b", "c", "d"]),
                st.one_of(st.none(), st.floats(min_value=0.001, max_value=1.0)),
                max_size=3,
            )
        )
        updates.append((origin, seq, nbrs))
    return updates


@given(lsu_updates(), st.randoms(use_true_random=False))
@settings(max_examples=60, deadline=None)
def test_topology_db_is_order_independent(updates, rnd):
    db1 = TopologyDatabase()
    for origin, seq, nbrs in updates:
        db1.update(origin, seq, nbrs)
    shuffled = list(updates)
    rnd.shuffle(shuffled)
    db2 = TopologyDatabase()
    for origin, seq, nbrs in shuffled:
        db2.update(origin, seq, nbrs)
    # Same highest-seq record per origin wins either way...
    for origin in ("a", "b", "c", "d"):
        if db1.seq(origin) != db2.seq(origin):
            # ...unless the same (origin, seq) appeared with different
            # payloads, which a correct origin never produces. Filter:
            seqs = [(o, s) for o, s, __ in updates]
            assert len(seqs) != len(set(seqs))
            return
    payloads = {}
    consistent = True
    for origin, seq, nbrs in updates:
        if (origin, seq) in payloads and payloads[(origin, seq)] != nbrs:
            consistent = False
        payloads[(origin, seq)] = nbrs
    if consistent:
        assert db1.adjacency() == db2.adjacency()


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["a", "b", "c"]),
            st.integers(min_value=1, max_value=5),
            st.sets(st.sampled_from(["g1", "g2", "g3"]), max_size=3),
        ),
        min_size=1,
        max_size=15,
        unique_by=lambda u: (u[0], u[1]),  # one payload per (origin, seq)
    ),
    st.randoms(use_true_random=False),
)
@settings(max_examples=60, deadline=None)
def test_group_db_is_order_independent(updates, rnd):
    db1 = GroupDatabase()
    for origin, seq, groups in updates:
        db1.update(origin, seq, groups)
    shuffled = list(updates)
    rnd.shuffle(shuffled)
    db2 = GroupDatabase()
    for origin, seq, groups in shuffled:
        db2.update(origin, seq, groups)
    for group in ("g1", "g2", "g3"):
        assert db1.members(group) == db2.members(group)


def test_overlay_replicas_converge_to_identical_databases():
    """End to end: after quiescence, every node's replica of both
    databases is byte-identical (the Sec II-B global-state claim)."""
    from repro.analysis.scenarios import continental_scenario

    scn = continental_scenario(seed=1901)
    rx = scn.overlay.client("site-MIA", 7, on_message=lambda m: None)
    rx.join("mcast:conv")
    scn.internet.fail_fiber("ispA", "DEN", "CHI")
    scn.run_for(5.0)
    reference = None
    for node in scn.overlay.nodes.values():
        topo = {o: (node.topo_db.seq(o), node.topo_db.record(o))
                for o in node.topo_db.origins()}
        groups = {o: node.group_db.groups_of(o)
                  for o in node.group_db.origins()}
        snapshot = (topo, groups)
        if reference is None:
            reference = snapshot
        else:
            assert snapshot[1] == reference[1]
            assert set(snapshot[0]) == set(reference[0])
