"""Addressing, service specs, messages, frames."""

import pytest

from repro.core.message import (
    Address,
    Frame,
    OVERLAY_HEADER_BYTES,
    OverlayMessage,
    ServiceSpec,
    flow_id,
)


def test_unicast_address():
    addr = Address("site-NYC", 80)
    assert not addr.is_group
    assert str(addr) == "site-NYC:80"
    with pytest.raises(ValueError):
        addr.group


def test_multicast_address():
    addr = Address("mcast:video", 80)
    assert addr.is_multicast and addr.is_group and not addr.is_anycast
    assert addr.group == "mcast:video"


def test_anycast_address():
    addr = Address("acast:transcode", 80)
    assert addr.is_anycast and addr.is_group and not addr.is_multicast


def test_addresses_are_hashable_and_comparable():
    assert Address("a", 1) == Address("a", 1)
    assert len({Address("a", 1), Address("a", 1), Address("b", 1)}) == 2


def test_service_spec_defaults():
    spec = ServiceSpec()
    assert spec.routing == "link-state"
    assert spec.link == "best-effort"
    assert not spec.ordered
    assert spec.deadline is None


def test_service_spec_make_splits_fields_and_params():
    spec = ServiceSpec.make(
        routing="disjoint", link="nm-strikes", k=3, ordered=True, n=5, m=2
    )
    assert spec.k == 3
    assert spec.ordered
    assert spec.param("n") == 5
    assert spec.param("m") == 2
    assert spec.param("missing", "fallback") == "fallback"


def test_service_spec_with_params_merges():
    spec = ServiceSpec.make(n=1)
    updated = spec.with_params(n=2, extra="x")
    assert updated.param("n") == 2
    assert updated.param("extra") == "x"
    assert spec.param("n") == 1  # original untouched


def test_service_spec_is_hashable():
    a = ServiceSpec.make(link="reliable", n=3)
    b = ServiceSpec.make(link="reliable", n=3)
    assert hash(a) == hash(b)
    assert a == b


def test_flow_id_distinguishes_services():
    src, dst = Address("a", 1), Address("b", 2)
    f1 = flow_id(src, dst, ServiceSpec(link="reliable"))
    f2 = flow_id(src, dst, ServiceSpec(link="best-effort"))
    assert f1 != f2


def test_message_key_and_wire_size():
    msg = OverlayMessage(
        flow="f", seq=3, src=Address("a", 1), dst=Address("b", 2),
        service=ServiceSpec(), origin="a", sent_at=0.0, size=100,
    )
    assert msg.key == ("f", 3)
    assert msg.wire_size == 100 + OVERLAY_HEADER_BYTES


def test_frame_wire_size_with_and_without_message():
    msg = OverlayMessage(
        flow="f", seq=0, src=Address("a", 1), dst=Address("b", 2),
        service=ServiceSpec(), origin="a", sent_at=0.0, size=100,
    )
    data = Frame(proto="p", ftype="data", src_node="a", dst_node="b", msg=msg)
    control = Frame(proto="p", ftype="ack", src_node="a", dst_node="b",
                    info={"cum": 5})
    assert data.wire_size > msg.wire_size
    assert control.wire_size < data.wire_size
