"""Cross-module integration tests: the paper's headline behaviours
end to end on the continental fabric."""

import pytest

from repro.analysis.metrics import availability_gaps, flow_stats
from repro.analysis.scenarios import continental_scenario
from repro.analysis.workloads import CbrSource
from repro.core.message import (
    Address,
    LINK_RELIABLE,
    ROUTING_DISJOINT,
    ROUTING_FLOOD,
    ServiceSpec,
)
from repro.net.internet import NATIVE
from repro.security.adversary import Blackhole


def test_subsecond_rerouting_vs_native_convergence():
    """E2's shape: after a fiber cut on the primary path, the overlay
    heals in well under a second; the native interdomain path stays
    black for ~40 s."""
    scn = continental_scenario(seed=301, isp_convergence_delay=30.0,
                               native_convergence_delay=40.0)
    overlay = scn.overlay
    internet = scn.internet

    # Overlay probe stream NYC -> LAX.
    got = []
    overlay.client("site-LAX", 7, on_message=lambda m: got.append(scn.sim.now))
    tx = overlay.client("site-NYC")
    probe = CbrSource(scn.sim, tx, Address("site-LAX", 7), rate_pps=50).start()

    # Native probe on the same fabric.
    native_got = []

    def native_probe():
        internet.send("site-NYC", "site-LAX", None, 100, NATIVE,
                      lambda d: native_got.append(scn.sim.now))
        scn.sim.schedule(0.02, native_probe)

    scn.sim.schedule(0.0, native_probe)
    scn.run_for(2.0)

    # Cut the fiber under the first overlay hop (and the native path).
    # Cut the first fiber of the *native* route (the overlay's primary
    # path rides the same fiber on this fabric).
    native_route = internet.current_route("site-NYC", "site-LAX", NATIVE)
    (isp, a), (__, b) = native_route[0], native_route[1]
    internet.fail_fiber(isp, a, b)
    # Run past the native 40 s reconvergence so its outage is measurable.
    scn.run_for(50.0)

    overlay_gaps = availability_gaps(
        [type("R", (), {"delivered_at": t})() for t in got], 0.02
    )
    native_gaps = availability_gaps(
        [type("R", (), {"delivered_at": t})() for t in native_got], 0.02
    )
    assert overlay_gaps, "overlay should see a brief interruption"
    assert max(d for __, d in overlay_gaps) < 1.0, "overlay healed sub-second"
    assert native_gaps and max(d for __, d in native_gaps) > 15.0


def test_disjoint_paths_tolerate_k_minus_1_compromises():
    """E5's guarantee boundary on the full continental overlay."""

    def delivered_with_compromises(k, compromised):
        scn = continental_scenario(seed=302)
        overlay = scn.overlay
        src, dst = "site-NYC", "site-LAX"
        mask = overlay.nodes[src].routing.source_bitmask(
            dst, ServiceSpec(routing=ROUTING_DISJOINT, k=k)
        )
        edges = overlay.link_index.edges_of_mask(mask)
        interior = {n for e in edges for n in e} - {src, dst}
        victims = sorted(interior)[:compromised]
        for victim in victims:
            overlay.compromise(victim, Blackhole())
        got = []
        overlay.client(dst, 7, on_message=got.append)
        overlay.client(src).send(
            Address(dst, 7), service=ServiceSpec(routing=ROUTING_DISJOINT, k=k)
        )
        scn.run_for(2.0)
        return len(got), len(interior)

    delivered, interior_count = delivered_with_compromises(k=2, compromised=1)
    assert delivered == 1
    if interior_count >= 2:
        # Compromising a node on EVERY path can block k-path routing.
        scn = continental_scenario(seed=303)
        overlay = scn.overlay
        mask = overlay.nodes["site-NYC"].routing.source_bitmask(
            "site-LAX", ServiceSpec(routing=ROUTING_DISJOINT, k=2)
        )
        edges = overlay.link_index.edges_of_mask(mask)
        import networkx as nx

        g = nx.Graph(list(edges))
        cutset = nx.minimum_node_cut(g, "site-NYC", "site-LAX")
        for victim in cutset:
            overlay.compromise(victim, Blackhole())
        got = []
        overlay.client("site-LAX", 7, on_message=got.append)
        overlay.client("site-NYC").send(
            Address("site-LAX", 7),
            service=ServiceSpec(routing=ROUTING_DISJOINT, k=2),
        )
        scn.run_for(2.0)
        assert got == [], "a full cut of the dissemination subgraph blocks it"


def test_constrained_flooding_survives_any_non_cut_compromise_set():
    """Flooding delivers as long as one correct path exists (Sec IV-B)."""
    import networkx as nx

    scn = continental_scenario(seed=304)
    overlay = scn.overlay
    src, dst = "site-SEA", "site-MIA"
    # Compromise three scattered interior nodes that do NOT cut the graph.
    victims = ["site-DEN", "site-CHI", "site-WAS"]
    from repro.net.topologies import overlay_edges

    g = nx.Graph([(f"site-{a}", f"site-{b}") for a, b in overlay_edges(["ispA", "ispB"])])
    g.remove_nodes_from(victims)
    assert nx.has_path(g, src, dst), "test premise: victims are not a cut"
    for victim in victims:
        overlay.compromise(victim, Blackhole())
    got = []
    overlay.client(dst, 7, on_message=got.append)
    overlay.client(src).send(Address(dst, 7), service=ServiceSpec(routing=ROUTING_FLOOD))
    scn.run_for(2.0)
    assert len(got) == 1


def test_overlay_paths_prefer_disjoint_fiber_audit():
    """Fig 1 / F1: the two min-cost node-disjoint overlay paths between
    the coasts ride fully disjoint fiber in the underlay."""
    scn = continental_scenario(seed=305)
    overlay = scn.overlay
    routing = overlay.nodes["site-NYC"].routing
    from repro.alg.disjoint import node_disjoint_paths

    paths = node_disjoint_paths(
        routing.adjacency(), "site-NYC", "site-LAX", 2
    )
    assert len(paths) == 2
    fibers = []
    for path in paths:
        path_fibers = set()
        for a, b in zip(path, path[1:]):
            link = overlay.nodes[a].links[b]
            for fiber in scn.internet.fiber_route(link.node_host, link.nbr_host,
                                                  link.carrier):
                path_fibers.add(fiber.name)
        fibers.append(path_fibers)
    assert not (fibers[0] & fibers[1]), "disjoint overlay paths share fiber"


def test_reliable_flow_survives_mid_stream_reroute():
    scn = continental_scenario(seed=306)
    overlay = scn.overlay
    got = []
    overlay.client("site-LAX", 7, on_message=lambda m: got.append(m.seq))
    tx = overlay.client("site-NYC")
    svc = ServiceSpec(link=LINK_RELIABLE, ordered=True, deadline=2.0)
    source = CbrSource(scn.sim, tx, Address("site-LAX", 7), rate_pps=100,
                       service=svc).start()
    scn.run_for(2.0)
    path = overlay.overlay_path("site-NYC", "site-LAX")
    a, b = path[1].removeprefix("site-"), path[2].removeprefix("site-")
    scn.internet.fail_fiber("ispA", a, b)
    scn.internet.fail_fiber("ispB", a, b)  # kill both carriers of that hop
    scn.run_for(5.0)
    source.stop()
    scn.run_for(2.0)
    stats = flow_stats(overlay.trace, source.flow, "site-LAX:7")
    # Hop-by-hop ARQ cannot save the packets buffered on the dead hop
    # during the ~0.3 s detection window; everything else arrives.
    assert stats.delivery_ratio > 0.93
    lost = stats.sent - stats.delivered
    assert lost < 0.6 * 100  # far less than a second of traffic at 100 pps
    assert got == sorted(got)


def test_all_protocol_routing_combinations_coexist():
    """F2: one node serves flows on every routing x link combination at
    the same time (the architecture's flexibility claim)."""
    from repro.core.message import (
        LINK_BEST_EFFORT,
        LINK_IT_PRIORITY,
        LINK_IT_RELIABLE,
        LINK_NM_STRIKES,
        LINK_REALTIME,
        LINK_SINGLE_STRIKE,
        ROUTING_GRAPH,
        ROUTING_LINK_STATE,
    )

    scn = continental_scenario(seed=307)
    overlay = scn.overlay
    combos = [
        ServiceSpec(routing=ROUTING_LINK_STATE, link=LINK_BEST_EFFORT),
        ServiceSpec(routing=ROUTING_LINK_STATE, link=LINK_RELIABLE),
        ServiceSpec(routing=ROUTING_LINK_STATE, link=LINK_REALTIME),
        ServiceSpec(routing=ROUTING_LINK_STATE, link=LINK_NM_STRIKES),
        ServiceSpec(routing=ROUTING_DISJOINT, link=LINK_BEST_EFFORT, k=2),
        ServiceSpec(routing=ROUTING_DISJOINT, link=LINK_SINGLE_STRIKE, k=3),
        ServiceSpec(routing=ROUTING_FLOOD, link=LINK_BEST_EFFORT),
        ServiceSpec(routing=ROUTING_GRAPH, link=LINK_SINGLE_STRIKE),
        ServiceSpec(routing=ROUTING_LINK_STATE, link=LINK_IT_PRIORITY),
        ServiceSpec(routing=ROUTING_LINK_STATE, link=LINK_IT_RELIABLE),
    ]
    received = {i: [] for i in range(len(combos))}
    for i in range(len(combos)):
        overlay.client("site-LAX", 700 + i,
                       on_message=lambda m, i=i: received[i].append(m))
    tx = overlay.client("site-NYC")
    for i, svc in enumerate(combos):
        tx.send(Address("site-LAX", 700 + i), service=svc)
    scn.run_for(3.0)
    for i, msgs in received.items():
        assert len(msgs) == 1, f"combo {i} ({combos[i]}) failed"
