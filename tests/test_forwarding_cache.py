"""Forwarding cache: memoized decide-stage decisions must be invisible.

The cache keys decisions on the shared databases' content-fingerprint
generation and drops the whole table when it moves, so its observable
behaviour contract is simple: delivery traces with the cache on must be
byte-identical to traces with it off, across exactly the events that
move the fingerprint — link failures, partitions and heals, cost drift.
"""

import pytest

from repro.analysis.scenarios import continental_scenario, triangle_scenario
from repro.core.config import OverlayConfig
from repro.core.message import Address, ROUTING_DISJOINT, ServiceSpec
from repro.core.pipeline import ForwardingCache
from repro.net.loss import BernoulliLoss, NoLoss
from repro.sim.trace import Counter


class TestForwardingCacheUnit:
    def test_miss_then_hit_same_generation(self):
        counters = Counter()
        cache = ForwardingCache(counters)
        calls = []
        compute = lambda: calls.append(1) or "hop"
        assert cache.lookup(7, ("ucast", "d"), compute) == "hop"
        assert cache.lookup(7, ("ucast", "d"), compute) == "hop"
        assert len(calls) == 1
        assert counters.get("fwd.miss") == 1
        assert counters.get("fwd.hit") == 1

    def test_none_is_a_cacheable_decision(self):
        counters = Counter()
        cache = ForwardingCache(counters)
        assert cache.lookup(1, ("ucast", "gone"), lambda: None) is None
        assert cache.lookup(1, ("ucast", "gone"), lambda: None) is None
        assert counters.get("fwd.miss") == 1
        assert counters.get("fwd.hit") == 1

    def test_generation_change_invalidates_wholesale(self):
        counters = Counter()
        cache = ForwardingCache(counters)
        cache.lookup(1, "a", lambda: "x")
        cache.lookup(1, "b", lambda: "y")
        assert len(cache) == 2
        assert cache.lookup(2, "a", lambda: "x2") == "x2"
        assert counters.get("fwd.invalidate") == 1
        assert len(cache) == 1  # b's old entry went with the generation

    def test_empty_table_invalidation_is_not_counted(self):
        counters = Counter()
        cache = ForwardingCache(counters)
        cache.lookup(1, "a", lambda: "x")
        cache.lookup(2, "a", lambda: "x")  # one real invalidation
        fresh = ForwardingCache(counters)
        fresh.lookup(3, "a", lambda: "x")  # first use: nothing to drop
        assert counters.get("fwd.invalidate") == 1

    def test_disabled_cache_always_computes(self):
        counters = Counter()
        cache = ForwardingCache(counters, enabled=False)
        calls = []
        for __ in range(3):
            cache.lookup(1, "a", lambda: calls.append(1) or "x")
        assert len(calls) == 3
        assert len(cache) == 0
        assert counters.as_dict() == {}

    def test_overflow_clears_and_counts(self):
        counters = Counter()
        cache = ForwardingCache(counters, capacity=2)
        cache.lookup(1, "a", lambda: 1)
        cache.lookup(1, "b", lambda: 2)
        cache.lookup(1, "c", lambda: 3)  # table full: clear, then insert c
        assert counters.get("fwd.overflow") == 1
        assert len(cache) == 1
        assert cache.lookup(1, "c", lambda: 99) == 3  # survived the clear

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ForwardingCache(Counter(), capacity=0)


def _continental_traffic(scn, deliveries):
    """Unicast fan-in, multicast, and disjoint-path traffic on the
    continental overlay — every decide-stage decision kind in play."""
    sim = scn.sim

    def receiver(site):
        return lambda msg: deliveries.append(
            (site, msg.origin, msg.flow, msg.seq, round(sim.now, 9))
        )

    scn.overlay.client("site-LAX", 7, on_message=receiver("site-LAX"))
    for site in ("site-SEA", "site-CHI", "site-MIA"):
        scn.overlay.client(site, 9, on_message=receiver(site)).join("mcast:m")
    scn.overlay.client("site-DEN", 8, on_message=receiver("site-DEN"))

    senders = [
        (scn.overlay.client("site-NYC"), Address("site-LAX", 7), None),
        (scn.overlay.client("site-BOS"), Address("site-LAX", 7), None),
        (scn.overlay.client("site-ATL"), Address("mcast:m", 9), None),
        (scn.overlay.client("site-WAS"), Address("site-DEN", 8),
         ServiceSpec(routing=ROUTING_DISJOINT, k=2)),
    ]
    state = {"seq": 0}

    def tick():
        state["seq"] += 1
        for client, addr, service in senders:
            if service is None:
                client.send(addr)
            else:
                client.send(addr, service=service)
        sim.schedule(0.05, tick)

    sim.schedule(0.0, tick)


def _run_continental(cache_on: bool, events):
    """Run the continental workload with ``events`` = [(at, fn(scn))];
    returns (deliveries, fwd counters)."""
    scn = continental_scenario(
        seed=777, config=OverlayConfig(forwarding_cache=cache_on)
    )
    deliveries: list[tuple] = []
    _continental_traffic(scn, deliveries)
    for at, fn in events:
        scn.sim.schedule(at, fn, scn)
    scn.run_for(12.0)
    counters = scn.overlay.counters.as_dict()
    return deliveries, {
        name: counters.get(name, 0)
        for name in ("fwd.hit", "fwd.miss", "fwd.invalidate")
    }


def _assert_equivalent(events):
    off, __ = _run_continental(False, events)
    on, fwd = _run_continental(True, events)
    assert on == off, "forwarding cache changed delivery behaviour"
    assert len(on) > 0, "scenario produced no deliveries — vacuous"
    assert fwd["fwd.hit"] > 0
    return fwd


class TestTraceEquivalence:
    """Byte-identical delivery traces cache-on vs cache-off, across the
    events that move the fingerprint generation."""

    def test_steady_state(self):
        fwd = _assert_equivalent([])
        # Converged network, repeating flows: hits dominate.
        assert fwd["fwd.hit"] > 10 * fwd["fwd.miss"]

    def test_link_failure_and_repair(self):
        def cut(scn):
            scn.internet.fail_fiber("ispA", "NYC", "CHI")
            scn.internet.fail_fiber("ispB", "NYC", "CHI")

        def repair(scn):
            scn.internet.repair_fiber("ispA", "NYC", "CHI")
            scn.internet.repair_fiber("ispB", "NYC", "CHI")

        fwd = _assert_equivalent([(3.0, cut), (8.0, repair)])
        # Both transitions flood LSUs -> the generation moved -> every
        # node dropped (at least) one decision table.
        assert fwd["fwd.invalidate"] > 0

    def test_partition_and_heal(self):
        from tests.test_partition import PARTITION_CUTS

        def split(scn):
            for a, b in PARTITION_CUTS:
                for isp in scn.internet.isps:
                    try:
                        scn.internet.fail_fiber(isp, a, b)
                    except KeyError:
                        pass

        def heal(scn):
            for a, b in PARTITION_CUTS:
                for isp in scn.internet.isps:
                    try:
                        scn.internet.repair_fiber(isp, a, b)
                    except KeyError:
                        pass

        fwd = _assert_equivalent([(3.0, split), (7.5, heal)])
        assert fwd["fwd.invalidate"] > 0

    def test_cost_drift(self):
        # Loss inflates measured link costs past the advertisement
        # threshold: fresh LSUs flood with no link ever going down, and
        # the content fingerprint still moves.
        drift = lambda scn: scn.internet.set_isp_loss(
            "ispA", lambda: BernoulliLoss(0.3)
        )
        settle = lambda scn: scn.internet.set_isp_loss("ispA", NoLoss)
        fwd = _assert_equivalent([(3.0, drift), (8.0, settle)])
        assert fwd["fwd.invalidate"] > 0


class TestLiveOverlay:
    def test_counters_and_cache_population(self):
        scn = triangle_scenario(seed=991)
        got = []
        scn.overlay.client("hz", 7, on_message=got.append)
        tx = scn.overlay.client("hx")
        for __ in range(20):
            tx.send(Address("hz", 7))
            scn.run_for(0.05)
        assert len(got) == 20
        counters = scn.overlay.counters.as_dict()
        assert counters["fwd.hit"] > counters["fwd.miss"]
        assert len(scn.overlay.nodes["hx"].pipeline.cache) > 0

    def test_config_off_disables_cache(self):
        scn = triangle_scenario(
            seed=991, config=OverlayConfig(forwarding_cache=False)
        )
        got = []
        scn.overlay.client("hz", 7, on_message=got.append)
        tx = scn.overlay.client("hx")
        for __ in range(5):
            tx.send(Address("hz", 7))
            scn.run_for(0.05)
        assert len(got) == 5
        counters = scn.overlay.counters.as_dict()
        assert "fwd.hit" not in counters
        assert "fwd.miss" not in counters
        assert len(scn.overlay.nodes["hx"].pipeline.cache) == 0

    def test_fiber_cut_invalidates_on_live_overlay(self):
        scn = triangle_scenario(seed=992)
        got = []
        scn.overlay.client("hy", 7, on_message=got.append)
        tx = scn.overlay.client("hx")
        tx.send(Address("hy", 7))
        scn.run_for(1.0)
        scn.internet.fail_fiber("tri", "x", "y")
        scn.run_for(3.0)
        tx.send(Address("hy", 7))
        scn.run_for(2.0)
        assert len(got) == 2  # rerouted via hz
        assert scn.overlay.counters.as_dict()["fwd.invalidate"] > 0
