"""Audit subsystem: invariant checkers, trace differ, report plumbing.

The contract under test (DESIGN.md "Audit and divergence detection"):

* every invariant checker passes on a healthy system and fires on a
  deliberately broken fixture — a checker that cannot fail checks
  nothing;
* the trace differ localizes the *first* divergent record with
  surrounding context instead of dumping whole streams;
* the audit switch is strictly opt-in: audit-off runs construct the
  plain cache classes and no auditor at all, and an audited run's
  delivery trace is byte-identical to an unaudited one;
* the ``clear()``-during-callback teardown leak the auditor originally
  surfaced stays fixed, in both simulator engine modes.
"""

from __future__ import annotations

import pytest

from repro.audit import (
    AuditReport,
    AuditViolation,
    AuditedForwardingCache,
    AuditedRouteComputeEngine,
    Auditor,
    TraceDivergenceError,
    assert_identical,
    audit_enabled,
    check_datagram_conservation,
    check_heap_accounting,
    check_teardown,
    collect_report,
    diff_counters,
    diff_sequences,
    diff_traces,
    reset_auditors,
)
from repro.core.compute import RouteComputeEngine
from repro.core.config import OverlayConfig
from repro.core.message import Address
from repro.core.network import OverlayNetwork
from repro.core.pipeline import ForwardingCache
from repro.analysis.workloads import CbrSource
from repro.net.internet import Internet
from repro.sim.events import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import Counter, TraceCollector


@pytest.fixture(autouse=True)
def _isolated_auditors(monkeypatch):
    """Each test starts with an empty auditor registry and no ambient
    REPRO_AUDIT (the bench CLIs set it process-wide)."""
    monkeypatch.delenv("REPRO_AUDIT", raising=False)
    reset_auditors()
    yield
    reset_auditors()


# ------------------------------------------------------------------- differ

def test_diff_sequences_identical_is_none():
    records = [("a", 1), ("b", 2), ("c", 3)]
    assert diff_sequences(records, list(records)) is None
    assert diff_sequences([], []) is None


def test_diff_sequences_localizes_first_divergence():
    a = [(i, "x") for i in range(100)]
    b = list(a)
    b[41] = (41, "y")
    b[90] = (90, "z")  # later divergence must not mask the first
    divergence = diff_sequences(a, b, label="deliveries")
    assert divergence is not None
    assert divergence.index == 41
    assert divergence.left == (41, "x")
    assert divergence.right == (41, "y")
    # Context covers index-3 .. index+3 and marks the divergent row.
    assert [row[0] for row in divergence.context] == list(range(38, 45))
    text = divergence.format()
    assert "'deliveries' at index 41" in text
    assert ">> [41]" in text  # the divergent row is marked, neighbors not
    assert ">> [38]" not in text


def test_diff_sequences_length_mismatch():
    a = [1, 2, 3, 4]
    divergence = diff_sequences(a, a[:2], label="records")
    assert divergence is not None
    assert divergence.index == 2
    assert divergence.left == 3
    assert divergence.right is None
    assert "length 4 vs 2" in divergence.label


def test_diff_counters_reports_key_and_sides():
    divergence = diff_counters({"fwd.hit": 3.0, "x": 1.0},
                               {"fwd.hit": 5.0, "x": 1.0})
    assert divergence is not None
    assert "fwd.hit" in divergence.label
    assert divergence.left == 3.0
    assert divergence.right == 5.0
    # A key missing on one side is a divergence too.
    assert diff_counters({"a": 1.0}, {}) is not None
    assert diff_counters({}, {}) is None


def test_diff_traces_checks_sends_then_records_then_counters():
    a, b = TraceCollector(), TraceCollector()
    for trace in (a, b):
        trace.record_send("f", 0, 0.5, 100, "dst")
        trace.record_delivery("f", 0, 0.5, 0.6, "dst", 100)
    assert diff_traces(a, b) is None
    b.counters.add("fwd.hit")
    divergence = diff_traces(a, b)
    assert divergence is not None and "fwd.hit" in divergence.label
    b.record_delivery("f", 1, 0.7, 0.8, "dst", 100)
    assert diff_traces(a, b).label.startswith("deliveries")
    b.sends[0] = None
    assert diff_traces(a, b).label == "sends"


def test_assert_identical_passes_and_raises():
    assert_identical([1, 2, 3], [1, 2, 3])  # no exception
    with pytest.raises(TraceDivergenceError) as exc:
        assert_identical([1, 2, 3], [1, 9, 3], label="seqs",
                         header="must match")
    message = str(exc.value)
    assert message.startswith("must match")
    assert "index 1" in message
    assert exc.value.divergence.left == 2
    # The benches' `assert a == b` contract survives the migration:
    assert isinstance(exc.value, AssertionError)


def test_assert_identical_dispatches_on_trace_collectors():
    a, b = TraceCollector(), TraceCollector()
    a.record_send("f", 0, 0.1, 10, "d")
    with pytest.raises(TraceDivergenceError) as exc:
        assert_identical(a, b)
    assert exc.value.divergence.label.startswith("sends")


# ------------------------------------------------------------------- report

def test_violation_and_report_formatting():
    violation = AuditViolation(
        invariant="fwd-coherence", detail="cached != fresh",
        sim_time=1.25, node="n03", flow="f:1",
        counters={"fwd.hit": 7.0},
    )
    line = violation.format()
    assert "fwd-coherence" in line and "t=1.250000s" in line
    assert "node=n03" in line and "flow=f:1" in line
    report = AuditReport()
    report.count_check(3)
    report.record(violation)
    other = AuditReport()
    other.count_check(2)
    report.merge(other)
    assert report.checks == 5 and not report.ok
    text = report.format()
    assert "5 checks, 1 violation(s)" in text
    assert "fwd.hit = 7.0" in text
    import json

    payload = json.loads(report.to_json())
    assert payload["checks"] == 5
    assert payload["violations"][0]["invariant"] == "fwd-coherence"


def test_auditor_counters_and_registry():
    counters = Counter()
    auditor = Auditor(counters=counters)
    assert auditor.check("ok-invariant", True)
    assert not auditor.check("bad-invariant", False, "broken", sim_time=2.0)
    assert counters.get("audit.check") == 2.0
    assert counters.get("audit.violation") == 1.0
    # The failure snapshot was taken *before* audit.violation bumped.
    snapshot = auditor.report.violations[0].counters
    assert snapshot["audit.check"] == 2.0
    merged = collect_report(run_checks=False)
    assert merged.checks == 2 and len(merged.violations) == 1
    reset_auditors()
    assert collect_report().checks == 0


def test_audit_enabled_switch(monkeypatch):
    assert not audit_enabled()
    assert audit_enabled(OverlayConfig(audit=True))
    assert not audit_enabled(OverlayConfig())
    monkeypatch.setenv("REPRO_AUDIT", "1")
    assert audit_enabled()
    monkeypatch.setenv("REPRO_AUDIT", "0")
    assert not audit_enabled()


# ------------------------------------------------------------- heap checks

@pytest.mark.parametrize("recycle", [True, False])
def test_heap_accounting_passes_on_healthy_sim(recycle):
    sim = Simulator(recycle_timers=recycle)
    handles = [sim.schedule(0.1 * (i + 1), lambda: None) for i in range(80)]
    for handle in handles[::3]:
        handle.cancel()
    auditor = Auditor(counters=Counter(), register=False)
    assert check_heap_accounting(sim, auditor)
    assert auditor.report.ok
    # Compaction ran as part of the check and left no dead entries.
    assert sim._dead == 0


@pytest.mark.parametrize("recycle", [True, False])
def test_heap_accounting_fires_on_corrupted_counters(recycle):
    sim = Simulator(recycle_timers=recycle)
    for i in range(10):
        sim.schedule(0.1 * (i + 1), lambda: None)
    sim._live += 1  # deliberately broken fixture
    auditor = Auditor(counters=Counter(), register=False)
    assert not check_heap_accounting(sim, auditor, compact=False)
    violation = auditor.report.violations[0]
    assert violation.invariant == "heap-accounting"
    assert "counters say" in violation.detail


@pytest.mark.parametrize("recycle", [True, False])
def test_teardown_check_passes_after_clear(recycle):
    sim = Simulator(recycle_timers=recycle)
    sim.schedule_periodic(0.05, lambda: None)
    sim.schedule(0.2, lambda: None)
    sim.run(until=0.3)
    sim.clear()
    auditor = Auditor(register=False)
    assert check_teardown(sim, auditor)


@pytest.mark.parametrize("recycle", [True, False])
def test_teardown_check_fires_on_post_clear_event(recycle):
    sim = Simulator(recycle_timers=recycle)
    sim.clear()
    sim.schedule_periodic(0.05, lambda: None)  # leaked past teardown
    auditor = Auditor(register=False)
    assert not check_teardown(sim, auditor)
    violation = auditor.report.violations[0]
    assert violation.invariant == "teardown-leak"
    assert "1 event(s) still queued" in violation.detail
    if recycle:  # legacy mode queues a one-shot proxy, not the timer
        assert "1 periodic" in violation.detail


@pytest.mark.parametrize("recycle", [True, False])
def test_clear_during_periodic_callback_does_not_leak(recycle):
    """Regression: a periodic timer whose callback tears the simulator
    down used to be re-armed *after* ``clear()`` swept the queue (the
    firing event is off-heap during its own callback), leaking a live
    timer into the next run. The teardown epoch in ``Simulator.clear``
    suppresses that re-arm."""
    sim = Simulator(recycle_timers=recycle)
    fired = []

    def tick():
        fired.append(sim.now)
        if len(fired) == 3:
            sim.clear()

    sim.schedule_periodic(0.1, tick)
    sim.run(until=5.0)
    assert len(fired) == 3
    assert sim.pending_events == 0
    auditor = Auditor(register=False)
    assert check_teardown(sim, auditor), auditor.report.format()


@pytest.mark.parametrize("recycle", [True, False])
def test_manual_timer_survives_clear_then_reschedule(recycle):
    """clear() cancels, it does not destroy: a manual timer can still be
    re-armed afterwards (restart-style reuse keeps working)."""
    sim = Simulator(recycle_timers=recycle)
    fired = []
    timer = sim.timer(lambda: fired.append(sim.now))
    timer.reschedule(0.1)
    sim.run(until=0.2)
    sim.clear()
    timer.reschedule(0.1)
    sim.run(until=sim.now + 0.2)
    assert len(fired) == 2


# ------------------------------------------------- datagram conservation

def _mini_internet(sim, rngs):
    inet = Internet(sim, rngs)
    dom = inet.add_isp("m", convergence_delay=5.0)
    for name in ("r0", "r1", "r2"):
        dom.add_router(name)
    dom.add_link("r0", "r1", 0.010, None, None)
    dom.add_link("r1", "r2", 0.010, None, None)
    for i, router in enumerate(("r0", "r1", "r2")):
        inet.add_host(f"h{i}", access_delay=0.0)
        inet.attach(f"h{i}", "m", router)
    return inet


def test_datagram_conservation_passes_on_real_traffic():
    sim = Simulator()
    rngs = RngRegistry(11)
    inet = _mini_internet(sim, rngs)
    overlay = OverlayNetwork(inet, ["h0", "h1", "h2"],
                             [("h0", "h1"), ("h1", "h2")])
    overlay.warm_up(2.0)
    overlay.client("h2", 7, on_message=lambda m: None)
    CbrSource(sim, overlay.client("h0"), Address("h2", 7), rate_pps=50.0).start()
    sim.run(until=sim.now + 2.0)
    auditor = Auditor(counters=overlay.counters, register=False)
    assert check_datagram_conservation(inet, auditor), (
        auditor.report.format()
    )
    assert inet.counters.get("datagrams-sent") > 0


def test_datagram_conservation_fires_on_cooked_counters():
    sim = Simulator()
    rngs = RngRegistry(11)
    inet = _mini_internet(sim, rngs)
    inet.counters.add("datagrams-sent", 5.0)  # sent but never resolved
    auditor = Auditor(register=False)
    assert not check_datagram_conservation(inet, auditor)
    violation = auditor.report.violations[0]
    assert violation.invariant == "datagram-conservation"
    assert "sent=5" in violation.detail


# --------------------------------------------------- audited cache checks

class _StubNode:
    """Just enough node surface for AuditedForwardingCache."""

    def __init__(self, sim):
        self.sim = sim
        self.id = "stub"
        self.counters = Counter()


def test_fwd_coherence_passes_on_deterministic_compute():
    sim = Simulator()
    node = _StubNode(sim)
    auditor = Auditor(counters=node.counters, sample_every=1, register=False)
    cache = AuditedForwardingCache(auditor, node)
    for _ in range(5):
        assert cache.lookup(7, ("dst", "svc"), lambda: ["hop"]) == ["hop"]
    assert auditor.report.ok
    assert auditor.report.checks == 4  # every hit sampled at 1


def test_fwd_coherence_fires_on_incoherent_cache():
    sim = Simulator()
    node = _StubNode(sim)
    auditor = Auditor(counters=node.counters, sample_every=1, register=False)
    cache = AuditedForwardingCache(auditor, node)
    results = iter([["hop-a"], ["hop-b"]])  # deliberately non-deterministic
    compute = lambda: next(results)
    cache.lookup(7, "key", compute)   # miss caches hop-a
    value = cache.lookup(7, "key", compute)  # hit; fresh says hop-b
    assert value == ["hop-a"]  # the cache still serves the cached value
    violation = auditor.report.violations[0]
    assert violation.invariant == "fwd-coherence"
    assert violation.node == "stub"
    assert node.counters.get("audit.violation") == 1.0


def test_fwd_coherence_sampling_is_counter_based():
    sim = Simulator()
    node = _StubNode(sim)
    auditor = Auditor(counters=node.counters, sample_every=4, register=False)
    cache = AuditedForwardingCache(auditor, node)
    cache.lookup(1, "k", lambda: "v")
    for _ in range(8):  # 8 hits -> exactly 2 sampled checks
        cache.lookup(1, "k", lambda: "v")
    assert auditor.report.checks == 2


def test_route_consistency_passes_and_fires():
    auditor = Auditor(counters=Counter(), sample_every=1, register=False)
    engine = AuditedRouteComputeEngine(auditor, counters=auditor.counters)
    engine.lookup(0xabc, ("spt", "n1"), lambda: {"n2": "n3"})
    engine.lookup(0xabc, ("spt", "n1"), lambda: {"n2": "n3"})
    assert auditor.report.ok and auditor.report.checks == 1
    results = iter([{"a": 1}, {"a": 2}])
    engine.lookup(0xdef, "key", lambda: next(results))
    engine.lookup(0xdef, "key", lambda: next(results))
    violation = auditor.report.violations[0]
    assert violation.invariant == "route-consistency"


# ----------------------------------------------------- switch + end-to-end

def _mesh(sim, rngs, n=8):
    inet = Internet(sim, rngs)
    dom = inet.add_isp("m", convergence_delay=5.0)
    fibers = sorted({tuple(sorted((f"r{i}", f"r{(i + d) % n}")))
                     for i in range(n) for d in (1, 3)})
    for i in range(n):
        dom.add_router(f"r{i}")
    for a, b in fibers:
        dom.add_link(a, b, 0.010, None, None)
    for i in range(n):
        inet.add_host(f"h{i}", access_delay=0.0)
        inet.attach(f"h{i}", "m", f"r{i}")
    links = [(f"h{a[1:]}", f"h{b[1:]}") for a, b in fibers]
    return inet, [f"h{i}" for i in range(n)], links


def _run_mesh(audit: bool) -> tuple[list, OverlayNetwork]:
    sim = Simulator()
    rngs = RngRegistry(99)
    inet, sites, links = _mesh(sim, rngs)
    overlay = OverlayNetwork(inet, sites, links, OverlayConfig(audit=audit))
    overlay.warm_up(2.0)
    deliveries = []
    overlay.client("h4", 7, on_message=lambda m: deliveries.append(
        (m.origin, m.flow, m.seq, round(sim.now, 9))
    ))
    CbrSource(sim, overlay.client("h0"), Address("h4", 7),
              rate_pps=40.0).start()
    # Churn one fiber so caches invalidate and refill under audit.
    sim.schedule(1.0, lambda: inet.fail_fiber("m", "r0", "r1"))
    sim.schedule(2.5, lambda: inet.repair_fiber("m", "r0", "r1"))
    sim.run(until=sim.now + 4.0)
    return deliveries, overlay


def test_audit_off_constructs_plain_classes():
    _, overlay = _run_mesh(audit=False)
    assert overlay.auditor is None
    assert type(overlay.route_engine) is RouteComputeEngine
    node = overlay.nodes["h0"]
    assert type(node.pipeline.cache) is ForwardingCache
    assert overlay.counters.get("audit.check") == 0.0


def test_audit_on_wires_audited_classes_and_finds_nothing():
    _, overlay = _run_mesh(audit=True)
    assert isinstance(overlay.route_engine, AuditedRouteComputeEngine)
    assert isinstance(overlay.nodes["h0"].pipeline.cache,
                      AuditedForwardingCache)
    report = collect_report()  # includes post-hoc heap/datagram checks
    assert report.checks > 0
    assert report.ok, report.format()
    assert overlay.counters.get("audit.check") == float(report.checks)


def test_audited_trace_is_byte_identical_to_unaudited():
    plain, _ = _run_mesh(audit=False)
    audited, overlay = _run_mesh(audit=True)
    assert len(plain) > 0
    assert_identical(audited, plain, label="deliveries",
                     header="the auditor changed simulation behaviour")
    assert overlay.counters.get("audit.check") > 0


def test_env_var_arms_the_auditor(monkeypatch):
    monkeypatch.setenv("REPRO_AUDIT", "1")
    sim = Simulator()
    rngs = RngRegistry(5)
    inet = _mini_internet(sim, rngs)
    overlay = OverlayNetwork(inet, ["h0", "h1"], [("h0", "h1")])
    assert overlay.auditor is not None
    assert isinstance(overlay.route_engine, AuditedRouteComputeEngine)
