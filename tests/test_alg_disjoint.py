"""Node-disjoint paths: correctness against a networkx oracle and the
disjointness invariant the intrusion-tolerance guarantee rests on."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.alg.dijkstra import path_cost
from repro.alg.disjoint import node_disjoint_paths
from repro.alg.graph import undirected

DIAMOND = undirected(
    [
        ("s", "a", 1.0),
        ("a", "t", 1.0),
        ("s", "b", 1.0),
        ("b", "t", 1.0),
        ("a", "b", 0.1),
    ]
)


def _assert_disjoint(paths, src, dst):
    for path in paths:
        assert path[0] == src and path[-1] == dst
        interior = path[1:-1]
        assert len(set(interior)) == len(interior), "node repeated within a path"
    all_interior = [n for p in paths for n in p[1:-1]]
    assert len(set(all_interior)) == len(all_interior), "paths share a node"


def test_two_disjoint_paths_in_diamond():
    paths = node_disjoint_paths(DIAMOND, "s", "t", 2)
    assert len(paths) == 2
    _assert_disjoint(paths, "s", "t")


def test_no_third_disjoint_path_in_diamond():
    paths = node_disjoint_paths(DIAMOND, "s", "t", 3)
    assert len(paths) == 2


def test_unreachable_destination():
    adj = {"s": {"a": 1.0}, "a": {"s": 1.0}, "t": {}}
    assert node_disjoint_paths(adj, "s", "t", 2) == ()


def test_k_zero_or_negative():
    assert node_disjoint_paths(DIAMOND, "s", "t", 0) == ()
    assert node_disjoint_paths(DIAMOND, "s", "t", -1) == ()


def test_same_endpoints_rejected():
    with pytest.raises(ValueError):
        node_disjoint_paths(DIAMOND, "s", "s", 2)


def test_min_cost_single_path_is_shortest():
    paths = node_disjoint_paths(DIAMOND, "s", "t", 1)
    assert len(paths) == 1
    assert path_cost(DIAMOND, paths[0]) == pytest.approx(2.0)


def test_min_cost_pair_total():
    # Two disjoint s-t paths must use both sides of the diamond: 2 + 2.
    paths = node_disjoint_paths(DIAMOND, "s", "t", 2)
    total = sum(path_cost(DIAMOND, p) for p in paths)
    assert total == pytest.approx(4.0)


def test_min_cost_avoids_greedy_trap():
    """A graph where the shortest path blocks all disjoint pairs unless
    the flow formulation reroutes it (the classic Suurballe example)."""
    adj = undirected(
        [
            ("s", "m", 1.0),
            ("m", "t", 1.0),
            ("s", "a", 2.0),
            ("a", "m", 0.1),  # tempting shortcut through m
            ("a", "t", 2.0),
            ("s", "b", 3.0),
            ("b", "t", 3.0),
        ]
    )
    paths = node_disjoint_paths(adj, "s", "t", 2)
    assert len(paths) == 2
    _assert_disjoint(paths, "s", "t")


def test_direct_edge_counts_as_a_path():
    adj = undirected([("s", "t", 1.0), ("s", "a", 1.0), ("a", "t", 1.0)])
    paths = node_disjoint_paths(adj, "s", "t", 2)
    assert len(paths) == 2


def test_negative_weight_rejected():
    adj = {"s": {"t": -2.0}, "t": {}}
    with pytest.raises(ValueError):
        node_disjoint_paths(adj, "s", "t", 1)


@st.composite
def random_graphs(draw):
    n = draw(st.integers(min_value=3, max_value=10))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    count = draw(st.integers(min_value=n - 1, max_value=len(possible)))
    chosen = draw(st.permutations(possible))[:count]
    edges = [
        (i, j, draw(st.floats(min_value=0.01, max_value=10.0))) for i, j in chosen
    ]
    return n, edges


@given(random_graphs(), st.integers(min_value=1, max_value=4))
@settings(max_examples=50, deadline=None)
def test_property_paths_are_disjoint_and_count_matches_connectivity(graph, k):
    n, edges = graph
    adj = undirected(edges)
    for i in range(n):
        adj.setdefault(i, {})
    src, dst = 0, n - 1
    paths = node_disjoint_paths(adj, src, dst, k)
    if paths:
        _assert_disjoint(paths, src, dst)
    g = nx.Graph()
    g.add_nodes_from(range(n))
    g.add_edges_from((u, v) for u, v, __ in edges)
    if g.has_edge(src, dst):
        # networkx connectivity ignores the direct edge nuance; just
        # check we found at least one path.
        assert len(paths) >= 1
        return
    try:
        connectivity = nx.node_connectivity(g, src, dst)
    except nx.NetworkXError:
        connectivity = 0
    assert len(paths) == min(k, connectivity)
