"""Group-state churn: joins, leaves, crashes, and tree reshaping while
a multicast stream is live (the Group State machinery under stress)."""

from repro.analysis.scenarios import continental_scenario
from repro.analysis.workloads import CbrSource
from repro.core.message import Address, LINK_RELIABLE, ServiceSpec


GROUP = "mcast:churn"


def _stream(scn, src_site="site-NYC", rate=50.0):
    tx = scn.overlay.client(src_site)
    return CbrSource(
        scn.sim, tx, Address(GROUP, 7), rate_pps=rate,
        service=ServiceSpec(link=LINK_RELIABLE),
    ).start()


def test_late_joiner_starts_receiving():
    scn = continental_scenario(seed=1301)
    source = _stream(scn)
    scn.run_for(2.0)
    got = []
    rx = scn.overlay.client("site-LAX", 7, on_message=lambda m: got.append(m.seq))
    rx.join(GROUP)
    scn.run_for(2.0)
    source.stop()
    assert got, "late joiner never received"
    assert min(got) > 50  # it missed the pre-join traffic


def test_leaver_stops_receiving_but_others_continue():
    scn = continental_scenario(seed=1302)
    got_a, got_b = [], []
    rx_a = scn.overlay.client("site-LAX", 7, on_message=lambda m: got_a.append(m.seq))
    rx_b = scn.overlay.client("site-MIA", 7, on_message=lambda m: got_b.append(m.seq))
    rx_a.join(GROUP)
    rx_b.join(GROUP)
    scn.run_for(1.0)
    source = _stream(scn)
    scn.run_for(2.0)
    rx_a.leave(GROUP)
    count_at_leave = len(got_a)
    scn.run_for(2.0)
    source.stop()
    scn.run_for(0.5)
    assert len(got_a) <= count_at_leave + 10  # a few in-flight at most
    assert len(got_b) > count_at_leave + 50  # b kept receiving


def test_rapid_join_leave_cycles_settle():
    scn = continental_scenario(seed=1303)
    got = []
    rx = scn.overlay.client("site-SEA", 7, on_message=lambda m: got.append(m.seq))
    source = _stream(scn, src_site="site-BOS")
    for __ in range(5):
        rx.join(GROUP)
        scn.run_for(0.3)
        rx.leave(GROUP)
        scn.run_for(0.3)
    rx.join(GROUP)
    scn.run_for(2.0)
    source.stop()
    scn.run_for(0.5)
    # After the final join the stream flows steadily.
    final_stretch = [s for s in got if s > max(got) - 50]
    assert len(final_stretch) >= 45


def test_tree_reshapes_when_members_change():
    """Adding a member far from the current tree grows the tree; the
    source keeps sending one copy."""
    scn = continental_scenario(seed=1304)
    overlay = scn.overlay
    rx1 = overlay.client("site-WAS", 7, on_message=lambda m: None)
    rx1.join(GROUP)
    scn.run_for(1.0)
    routing = overlay.nodes["site-NYC"].routing
    small_tree = routing.multicast_children("site-NYC", GROUP)
    rx2 = overlay.client("site-SEA", 7, on_message=lambda m: None)
    rx2.join(GROUP)
    scn.run_for(1.0)
    big_tree = routing.multicast_children("site-NYC", GROUP)
    assert set(small_tree) <= set(big_tree) or len(big_tree) >= len(small_tree)
    # Group database agrees everywhere.
    for node in overlay.nodes.values():
        assert node.group_db.members(GROUP) == ["site-SEA", "site-WAS"]


def test_member_node_crash_withdraws_interest_on_recovery():
    """A crashed member's node stops advertising its groups once it
    recovers with fresh client state."""
    scn = continental_scenario(seed=1305)
    overlay = scn.overlay
    rx = overlay.client("site-MIA", 7, on_message=lambda m: None)
    rx.join(GROUP)
    scn.run_for(1.0)
    assert overlay.nodes["site-NYC"].group_db.members(GROUP) == ["site-MIA"]
    overlay.crash("site-MIA")
    scn.run_for(1.0)
    overlay.recover("site-MIA")
    scn.run_for(1.0)
    # The client objects survived the daemon restart in our model, so
    # interest is re-advertised; what matters is consistency:
    members = overlay.nodes["site-NYC"].group_db.members(GROUP)
    assert members == overlay.nodes["site-DAL"].group_db.members(GROUP)


def test_two_sources_one_group():
    scn = continental_scenario(seed=1306)
    got = []
    rx = scn.overlay.client("site-DEN", 7, on_message=lambda m: got.append(m.origin))
    rx.join(GROUP)
    scn.run_for(1.0)
    s1 = _stream(scn, src_site="site-NYC", rate=20)
    s2 = _stream(scn, src_site="site-MIA", rate=20)
    scn.run_for(2.0)
    s1.stop()
    s2.stop()
    scn.run_for(0.5)
    origins = set(got)
    assert origins == {"site-NYC", "site-MIA"}
