"""Warm-start subsystem: snapshot/restore round trips, constructed
convergence, the snapshot store, and the sweep-engine plumbing.

The contract under test (DESIGN.md "Warm-start and convergence
snapshots"):

* a :func:`~repro.core.warmstart.capture` payload restored into a
  fresh twin produces a **byte-identical continuation** — deliveries,
  counters, and (in recycled/columnar modes) event sequence numbers
  match a straight-through run exactly; the legacy engine preserves
  the trace with a constant seq shift;
* :func:`~repro.core.warmstart.construct_converged` builds, from the
  topology spec alone, the very state an organic ``warm_up`` +
  ``quiesce`` reaches: equal database fingerprints, equal timer
  schedules, identical continuations — and a settle window moves
  nothing (the constructed state is a fixed point);
* the :class:`~repro.core.warmstart.SnapshotStore` never serves
  stale-source or format-incompatible payloads, and
  ``REPRO_WARMSTART_FRESH`` invalidates on sight;
* sweep cells carrying a ``warm_key`` fold it into the cache digest,
  hand it to ``run_cell``, and force fresh warm-starts when the
  result cache is disabled (``--fresh`` semantics).
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.runner import WARMSTART_FRESH_ENV, SweepCache, run_sweep
from repro.analysis.sweep import Cell, Sweep
from repro.analysis.workloads import CbrSource
from repro.audit import assert_identical
from repro.core.config import OverlayConfig
from repro.core.message import Address
from repro.core.network import OverlayNetwork
from repro.core.warmstart import (
    SnapshotStore,
    WarmStartError,
    capture,
    construct_converged,
    ensure_warm,
    restore,
    warm_key,
)
from repro.net.internet import Internet
from repro.net.loss import BernoulliLoss
from repro.sim import snapshot as snap
from repro.sim.events import SimulationError, Simulator
from repro.sim.rng import RngRegistry

SEED = 4242
N = 10
WARMUP = 2.0


def _mesh(n: int = N, engine: str = "recycled", *, lossy: bool = False,
          ragged: bool = False) -> OverlayNetwork:
    """A fresh, unstarted ring+chords overlay (the scaling-leg shape at
    test size). ``lossy`` puts a loss process on one fiber and
    ``ragged`` makes one fiber slower — both disqualify tier-2."""
    sim = Simulator(
        recycle_timers=engine != "legacy", columnar=engine == "columnar"
    )
    rngs = RngRegistry(SEED)
    inet = Internet(sim, rngs)
    domain = inet.add_isp("mesh", convergence_delay=10.0)
    fibers = sorted(
        {tuple(sorted((f"r{i:02d}", f"r{(i + d) % n:02d}")))
         for i in range(n) for d in (1, 3)}
    )
    for i in range(n):
        domain.add_router(f"r{i:02d}")
    for j, (a, b) in enumerate(fibers):
        loss = BernoulliLoss(0.2) if lossy and j == 0 else None
        delay = 0.020 if ragged and j == 0 else 0.010
        domain.add_link(a, b, delay, None, loss)
    for i in range(n):
        inet.add_host(f"n{i:02d}", access_delay=0.0)
        inet.attach(f"n{i:02d}", "mesh", f"r{i:02d}")
    sites = [f"n{i:02d}" for i in range(n)]
    links = [(f"n{a[1:]}", f"n{b[1:]}") for a, b in fibers]
    return OverlayNetwork(
        inet, sites, links, OverlayConfig(columnar=engine == "columnar")
    )


def _drive(overlay: OverlayNetwork, duration: float = 1.5) -> list[tuple]:
    """A deterministic measured window: two CBR flows, exact-time
    delivery trace."""
    sim = overlay.sim
    deliveries: list[tuple] = []

    def receiver(site):
        return lambda msg: deliveries.append(
            (site, msg.origin, msg.flow, msg.seq, sim.now)
        )

    for src, sink in (("n00", "n05"), ("n03", "n08")):
        overlay.client(sink, 7, on_message=receiver(sink))
        CbrSource(sim, overlay.client(src), Address(sink, 7),
                  rate_pps=10.0).start()
    sim.run(until=sim.now + duration)
    return deliveries


def _schedule(overlay: OverlayNetwork, with_seq: bool = True) -> list[tuple]:
    """The armed auto-timer schedule as a sorted comparison key."""
    entries = []
    for node in overlay.nodes.values():
        for nbr, link in node.links.items():
            for kind, timer in (("hello", link._hello_timer),
                                ("check", link._check_timer)):
                entries.append((kind, node.id, nbr, snap.timer_schedule(timer)))
        for kind, timer in (("refresh", node._refresh_timer),
                            ("metric", node._metric_timer)):
            entries.append((kind, node.id, None, snap.timer_schedule(timer)))
    rows = []
    for kind, nid, nbr, entry in entries:
        row = (kind, nid, nbr, entry["time"], entry["interval"],
               entry["fired"], entry["rearmed"])
        rows.append(row + (entry["seq"],) if with_seq else row)
    return sorted(rows)


def _organic_capture():
    """One organically warmed mesh, its snapshot, and its continuation
    trace — the reference every restored twin is compared against."""
    overlay = _mesh()
    overlay.warm_up(WARMUP)
    payload = capture(overlay, key="test", source_fingerprint="fp0")
    deliveries = _drive(overlay)
    return overlay, payload, deliveries


# -------------------------------------------------- tier 1: round trips


@pytest.mark.parametrize("engine", ["recycled", "columnar", "legacy"])
def test_restore_continuation_is_byte_identical(engine):
    organic, payload, organic_deliveries = _organic_capture()
    twin = _mesh(engine=engine)
    t0 = restore(twin, payload)
    assert t0 == payload["meta"]["t0"]
    assert twin.sim.now == organic.sim.now - 1.5  # resumed at capture's t0
    assert twin.converged()
    twin_deliveries = _drive(twin)
    assert_identical(twin_deliveries, organic_deliveries, label="deliveries")
    assert twin.counters.as_dict() == organic.counters.as_dict()
    assert twin.internet.counters.as_dict() == organic.internet.counters.as_dict()
    assert twin.sim.now == organic.sim.now
    if engine != "legacy":
        # Seq-exact engines: the allocator state itself is reproduced.
        assert twin.sim._seq == organic.sim._seq
        assert twin.sim.events_processed == organic.sim.events_processed


def test_restore_supports_a_fluid_continuation():
    # The fluid engine attaches *after* warm-up (steady-state capture
    # forbids live fluid state); a restored twin must carry fluid bulk
    # traffic exactly like an organically warmed overlay does.
    organic = _mesh()
    organic.warm_up(WARMUP)
    payload = capture(organic)
    twin = _mesh()
    restore(twin, payload)

    def fluid_drive(overlay):
        sim = overlay.sim
        deliveries: list[tuple] = []
        overlay.client("n05", 9, on_message=lambda msg: deliveries.append(
            (msg.origin, msg.flow, msg.seq, sim.now)))
        CbrSource(sim, overlay.client("n00"), Address("n05", 9),
                  rate_pps=50.0, fluid=overlay.fluid_engine()).start()
        sim.run(until=sim.now + 1.5)
        overlay.fluid_engine().settle_now()
        return deliveries, overlay.counters.as_dict()

    twin_out = fluid_drive(twin)
    organic_out = fluid_drive(organic)
    assert twin_out == organic_out
    assert twin_out[1]["fluid.flows-started"] == 1.0


def test_restore_is_seq_exact_across_recycled_and_columnar():
    __, payload, __ = _organic_capture()
    recycled, columnar = _mesh(), _mesh(engine="columnar")
    restore(recycled, payload)
    restore(columnar, payload)
    assert _schedule(recycled) == _schedule(columnar)
    assert recycled.sim._seq == columnar.sim._seq


def test_timer_schedule_survives_the_round_trip():
    organic, payload, __ = _organic_capture()
    # The payload's entries are exactly the armed schedule...
    stored = sorted(
        (e["kind"], e["node"], e["nbr"], e["time"], e["interval"],
         e["fired"], e["rearmed"], e["seq"])
        for e in payload["timers"]
    )
    twin = _mesh()
    restore(twin, payload)
    # ...and the restored overlay re-arms precisely that schedule, with
    # every timer actually queued (not just recorded on an attribute).
    assert _schedule(twin) == stored
    assert len(snap.queued_auto_timers(twin.sim)) == len(stored)
    # Legacy adoption preserves everything but the seqs.
    legacy = _mesh(engine="legacy")
    restore(legacy, payload)
    assert _schedule(legacy, with_seq=False) == [r[:-1] for r in stored]


def test_rng_stream_positions_survive_the_round_trip():
    overlay = _mesh()
    overlay.warm_up(WARMUP)
    probe = overlay.rngs.stream("probe")
    burned = [probe.random() for __ in range(3)]
    payload = capture(overlay)
    twin = _mesh()
    restore(twin, payload)
    assert twin.rngs.master_seed == overlay.rngs.master_seed
    restored = twin.rngs.stream("probe")
    assert [restored.random() for __ in range(5)] == \
        [probe.random() for __ in range(5)]
    # A fresh stream would have replayed the burned prefix instead.
    assert restored.random() != burned[0]


def test_restore_rejects_bad_payloads_and_dirty_targets():
    __, payload, __ = _organic_capture()
    warmed = _mesh()
    warmed.warm_up(WARMUP)
    with pytest.raises(WarmStartError, match="fresh"):
        restore(warmed, payload)
    with pytest.raises(WarmStartError, match="format"):
        restore(_mesh(), {**payload, "format": 999})
    with pytest.raises(WarmStartError, match="node set"):
        restore(_mesh(n=8), payload)
    # The clock primitive itself refuses a simulator with history.
    sim = Simulator()
    sim.schedule(0.1, lambda: None)
    with pytest.raises(SimulationError, match="fresh"):
        sim.restore_clock(1.0, 5)


# ---------------------------------------- tier 2: constructed convergence


def test_constructed_equals_organic_state():
    organic = _mesh()
    organic.warm_up(WARMUP)
    t0_organic = organic.quiesce()
    twin = _mesh()
    t0 = construct_converged(twin, WARMUP)
    assert t0 == t0_organic == twin.sim.now
    assert twin.converged()
    for nid, node in organic.nodes.items():
        built = twin.nodes[nid]
        assert built.topo_db.fingerprint == node.topo_db.fingerprint
        assert built.group_db.fingerprint == node.group_db.fingerprint
        assert built.warm_state() == node.warm_state()
        for nbr, link in node.links.items():
            organic_link = link.warm_state()
            built_link = built.links[nbr].warm_state()
            # Historical traffic statistics are documented as not
            # replayed; everything protocol-visible must be equal.
            for stat in ("bytes_sent", "frames_sent",
                         "data_bytes_sent", "data_frames_sent"):
                organic_link.pop(stat), built_link.pop(stat)
            assert built_link == organic_link
    assert _schedule(twin, with_seq=False) == \
        _schedule(organic, with_seq=False)


def test_constructed_continuation_matches_organic():
    organic = _mesh()
    organic.warm_up(WARMUP)
    organic.quiesce()
    twin = _mesh()
    construct_converged(twin, WARMUP)
    assert_identical(_drive(twin), _drive(organic), label="deliveries")


def test_constructed_state_is_a_settle_fixed_point():
    overlay = _mesh()
    construct_converged(overlay, WARMUP)
    fingerprints = [
        (n.topo_db.fingerprint, n.group_db.fingerprint)
        for n in overlay.nodes.values()
    ]
    overlay.sim.run(until=overlay.sim.now + 1.5)  # hello/check/metric ticks
    assert overlay.converged()
    assert fingerprints == [
        (n.topo_db.fingerprint, n.group_db.fingerprint)
        for n in overlay.nodes.values()
    ]
    assert all(
        link.warm_state()["switch_count"] == 0
        for node in overlay.nodes.values() for link in node.links.values()
    )


def test_constructed_rejects_unconstructible_topologies():
    with pytest.raises(WarmStartError, match="loss"):
        construct_converged(_mesh(lossy=True), WARMUP)
    with pytest.raises(WarmStartError, match="uniform"):
        construct_converged(_mesh(ragged=True), WARMUP)
    with pytest.raises(WarmStartError, match="refresh"):
        construct_converged(_mesh(), OverlayConfig().lsu_refresh + 1.0)
    warmed = _mesh()
    warmed.warm_up(WARMUP)
    with pytest.raises(WarmStartError, match="fresh"):
        construct_converged(warmed, WARMUP)


# ----------------------------------------------------- store + front door


def test_store_round_trip_and_staleness(tmp_path, monkeypatch):
    monkeypatch.delenv(WARMSTART_FRESH_ENV, raising=False)
    __, payload, __ = _organic_capture()
    store = SnapshotStore(tmp_path)
    key = payload["meta"]["key"]
    path = store.save(key, payload)
    assert path == store.path(key) and path.exists()
    loaded = store.load(key, "fp0")
    assert loaded == __import__("json").loads(
        __import__("json").dumps(payload))  # JSON-shaped, loads losslessly
    twin = _mesh()
    restore(twin, loaded)
    assert twin.converged()
    # Stale source fingerprint: never served.
    assert store.load(key, "fp-moved") is None
    # Unknown key / format bump: never served.
    assert store.load("nope", "fp0") is None
    store.save("v999", {**payload, "format": 999})
    assert store.load("v999", "fp0") is None
    # REPRO_WARMSTART_FRESH deletes on sight.
    monkeypatch.setenv(WARMSTART_FRESH_ENV, "1")
    assert store.load(key, "fp0") is None
    assert not store.path(key).exists()
    monkeypatch.setenv(WARMSTART_FRESH_ENV, "0")  # "0" means off
    store.save(key, payload)
    assert store.load(key, "fp0") is not None


def test_warm_key_ignores_engine_and_tracks_spec():
    spec = ("mesh", N, SEED, WARMUP)
    base = warm_key(spec, OverlayConfig(), "fp0")
    assert warm_key(spec, OverlayConfig(columnar=True), "fp0") == base
    assert warm_key(spec, OverlayConfig(audit=True), "fp0") == base
    assert warm_key(("mesh", N + 1, SEED, WARMUP), OverlayConfig(), "fp0") != base
    assert warm_key(spec, OverlayConfig(hello_interval=0.2), "fp0") != base
    assert warm_key(spec, OverlayConfig(), "fp1") != base


def test_ensure_warm_prefers_snapshot_then_constructed(tmp_path, monkeypatch):
    monkeypatch.delenv(WARMSTART_FRESH_ENV, raising=False)
    store = SnapshotStore(tmp_path)
    spec = ("mesh", N, SEED, WARMUP)
    overlay, info = ensure_warm(_mesh, spec, WARMUP, store=store,
                                source_fingerprint="fp0")
    assert info["warm_source"] == "organic" and overlay.converged()
    assert store.path(info["key"]).exists()
    hit, info2 = ensure_warm(_mesh, spec, WARMUP, store=store,
                             source_fingerprint="fp0")
    assert info2["warm_source"] == "snapshot" and info2["key"] == info["key"]
    assert hit.converged() and info2["t0"] == info["t0"]
    # No store: constructed wins when the topology qualifies...
    built, info3 = ensure_warm(_mesh, spec, WARMUP, construct=True)
    assert info3["warm_source"] == "constructed" and built.converged()
    # ...and an unconstructible topology falls back to organic.
    fallback, info4 = ensure_warm(
        lambda: _mesh(lossy=True), spec, WARMUP, construct=True
    )
    assert info4["warm_source"] == "organic" and fallback.converged()


# ------------------------------------------------------- sweep plumbing


def _warm_probe_cell(seed: int, x: int, warm_key: str | None = None):
    return {
        "x": x,
        "warm_key_seen": warm_key or "",
        "fresh_env": os.environ.get(WARMSTART_FRESH_ENV, ""),
    }


def _warm_sweep(with_keys: bool) -> Sweep:
    return Sweep(
        name="test_warm_plumbing",
        run_cell=_warm_probe_cell,
        cells=[
            Cell(key=(x,), params={"x": x}, seed=99,
                 warm_key=f"wk-{x}" if with_keys else None)
            for x in (1, 2)
        ],
        master_seed=98,
    )


def test_cell_warm_key_reaches_run_cell_and_forces_fresh(monkeypatch):
    monkeypatch.delenv(WARMSTART_FRESH_ENV, raising=False)
    # Cache disabled == a --fresh run: snapshots must be invalidated too.
    table = run_sweep(_warm_sweep(True), workers=0, cache=False).as_table()
    assert table[(1,)]["warm_key_seen"] == "wk-1"
    assert table[(2,)]["warm_key_seen"] == "wk-2"
    assert all(v["fresh_env"] == "1" for v in table.values())
    assert WARMSTART_FRESH_ENV not in os.environ  # restored afterwards
    # Key-less cells never get the kwarg and never force freshness.
    table = run_sweep(_warm_sweep(False), workers=0, cache=False).as_table()
    assert all(v["warm_key_seen"] == "" for v in table.values())
    assert all(v["fresh_env"] == "" for v in table.values())


def test_cell_warm_key_folds_into_cache_digest(tmp_path, monkeypatch):
    monkeypatch.delenv(WARMSTART_FRESH_ENV, raising=False)
    store = SweepCache(tmp_path)
    keyed, plain = _warm_sweep(True), _warm_sweep(False)
    for sweep in (keyed, plain):
        digests = [store.digest(sweep, cell, 99, 0, "fp") for cell in sweep.cells]
        assert len(set(digests)) == len(digests)
    for keyed_cell, plain_cell in zip(keyed.cells, plain.cells):
        assert store.digest(keyed, keyed_cell, 99, 0, "fp") != \
            store.digest(plain, plain_cell, 99, 0, "fp")
    # A cached warm-keyed run is served without re-forcing freshness.
    first = run_sweep(keyed, workers=0, cache=store, fingerprint="fp")
    assert first.executed == 2 and first.cached == 0
    second = run_sweep(keyed, workers=0, cache=store, fingerprint="fp")
    assert second.cached == 2
    assert second.as_table() == first.as_table()
