"""Whole-data-center failures (every fiber at a city goes dark)."""

from repro.analysis.metrics import availability_gaps
from repro.analysis.scenarios import continental_scenario
from repro.analysis.workloads import CbrSource
from repro.core.message import Address
from repro.sim.trace import DeliveryRecord


def test_fail_site_cuts_all_incident_fibers():
    scn = continental_scenario(seed=1701)
    cut = scn.internet.fail_site("DEN")
    assert cut, "DEN has fibers in both ISPs"
    isps = {isp for isp, __, ___ in cut}
    assert isps == {"ispA", "ispB"}
    for isp, a, b in cut:
        assert scn.internet.isps[isp].link_between(a, b).failed


def test_repair_site_restores_everything():
    scn = continental_scenario(seed=1702)
    cut = scn.internet.fail_site("DEN")
    scn.internet.repair_site(cut)
    for isp, a, b in cut:
        assert not scn.internet.isps[isp].link_between(a, b).failed


def test_fail_site_is_idempotent_about_already_failed_fibers():
    scn = continental_scenario(seed=1703)
    scn.internet.fail_fiber("ispA", "DEN", "CHI")
    cut = scn.internet.fail_site("DEN")
    assert ("ispA", "DEN", "CHI") not in cut  # it was already down


def test_traffic_routes_around_a_dead_data_center():
    """The Fig 1 resilience story at data-center granularity: losing a
    whole site costs well under a second for traffic through it."""
    scn = continental_scenario(seed=1704)
    overlay = scn.overlay
    times = []
    overlay.client("site-LAX", 7, on_message=lambda m: times.append(scn.sim.now))
    tx = overlay.client("site-NYC")
    source = CbrSource(scn.sim, tx, Address("site-LAX", 7), rate_pps=50).start()
    scn.run_for(3.0)
    transit = overlay.overlay_path("site-NYC", "site-LAX")[1]
    city = transit.removeprefix("site-")
    scn.internet.fail_site(city)
    scn.run_for(10.0)
    source.stop()
    scn.run_for(1.0)
    records = [DeliveryRecord("p", i, t, t, "d") for i, t in enumerate(times)]
    gaps = availability_gaps(records, expected_interval=0.02)
    assert gaps, "the site failure must be visible"
    assert max(d for __, d in gaps) < 1.0
    assert times[-1] > scn.sim.now - 2.0  # flowing again at the end
