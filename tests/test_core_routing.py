"""The routing level: link index bitmasks, link-state tables, trees,
anycast, and source-based bitmask computation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.linkstate import GroupDatabase, TopologyDatabase
from repro.core.message import ROUTING_DISJOINT, ROUTING_FLOOD, ROUTING_GRAPH, ServiceSpec
from repro.core.routing import LinkIndex, RoutingService

LINKS = [("a", "b"), ("b", "c"), ("a", "c"), ("c", "d")]


def _dbs(edges, groups=None):
    """Build consistent topology/group databases for a symmetric graph."""
    topo = TopologyDatabase()
    nodes = {}
    for a, b, w in edges:
        nodes.setdefault(a, {})[b] = w
        nodes.setdefault(b, {})[a] = w
    for node, nbrs in nodes.items():
        topo.update(node, 1, nbrs)
    gdb = GroupDatabase()
    for node, gs in (groups or {}).items():
        gdb.update(node, 1, gs)
    return topo, gdb


def _service(node, edges, groups=None, links=LINKS):
    topo, gdb = _dbs(edges, groups)
    return RoutingService(node, topo, gdb, LinkIndex(links))


EDGES = [("a", "b", 1.0), ("b", "c", 1.0), ("a", "c", 3.0), ("c", "d", 1.0)]


class TestLinkIndex:
    def test_bits_are_stable_and_order_independent(self):
        idx1 = LinkIndex([("a", "b"), ("b", "c")])
        idx2 = LinkIndex([("c", "b"), ("b", "a")])
        assert idx1.bit("a", "b") == idx2.bit("b", "a")
        assert idx1.bit("b", "c") == idx2.bit("c", "b")

    def test_duplicate_link_rejected(self):
        with pytest.raises(ValueError):
            LinkIndex([("a", "b"), ("b", "a")])

    def test_incident(self):
        idx = LinkIndex(LINKS)
        nbrs = {nbr for nbr, __ in idx.incident("c")}
        assert nbrs == {"a", "b", "d"}
        assert idx.incident("nowhere") == []

    def test_full_mask_covers_all_links(self):
        idx = LinkIndex(LINKS)
        assert idx.full_mask() == (1 << len(LINKS)) - 1

    def test_mask_edge_roundtrip(self):
        idx = LinkIndex(LINKS)
        mask = idx.mask_of_edges([("b", "a"), ("c", "d")])
        assert set(idx.edges_of_mask(mask)) == {("a", "b"), ("c", "d")}

    @given(st.sets(st.sampled_from(range(len(LINKS))), max_size=len(LINKS)))
    @settings(max_examples=30, deadline=None)
    def test_property_mask_roundtrip(self, bits):
        idx = LinkIndex(LINKS)
        mask = 0
        for b in bits:
            mask |= 1 << b
        assert idx.mask_of_edges(idx.edges_of_mask(mask)) == mask


class TestLinkStateRouting:
    def test_next_hop_follows_costs(self):
        svc = _service("a", EDGES)
        assert svc.next_hop("c") == "b"  # a-b-c (2.0) beats a-c (3.0)
        assert svc.next_hop("d") == "b"

    def test_next_hop_unreachable(self):
        svc = _service("a", [("a", "b", 1.0), ("c", "d", 1.0)])
        assert svc.next_hop("d") is None

    def test_distance(self):
        svc = _service("a", EDGES)
        assert svc.distance("a", "d") == pytest.approx(3.0)
        assert svc.distance("a", "a") == 0.0

    def test_tables_invalidate_on_topology_change(self):
        topo, gdb = _dbs(EDGES)
        svc = RoutingService("a", topo, gdb, LinkIndex(LINKS))
        assert svc.next_hop("c") == "b"
        topo.update("b", 2, {"a": 1.0, "c": None})  # b-c went down
        assert svc.next_hop("c") == "c"


class TestMulticast:
    def test_children_along_tree(self):
        groups = {"c": ["g"], "d": ["g"]}
        svc_a = _service("a", EDGES, groups)
        assert svc_a.multicast_children("a", "g") == ["b"]
        svc_b = _service("b", EDGES, groups)
        assert svc_b.multicast_children("a", "g") == ["c"]
        svc_c = _service("c", EDGES, groups)
        assert svc_c.multicast_children("a", "g") == ["d"]

    def test_all_nodes_compute_consistent_trees(self):
        groups = {"c": ["g"], "d": ["g"], "a": ["g"]}
        children = {}
        for node in ("a", "b", "c", "d"):
            svc = _service(node, EDGES, groups)
            children[node] = svc.multicast_children("b", "g")
        # Union of per-node children forms one tree rooted at b.
        edges = {(p, c) for p, kids in children.items() for c in kids}
        kids = [c for __, c in edges]
        assert len(kids) == len(set(kids))

    def test_empty_group(self):
        svc = _service("a", EDGES)
        assert svc.multicast_children("a", "nope") == []


class TestAnycast:
    def test_nearest_member_wins(self):
        groups = {"b": ["g"], "d": ["g"]}
        svc = _service("a", EDGES, groups)
        assert svc.anycast_target("g") == "b"

    def test_self_membership_preferred(self):
        groups = {"a": ["g"], "b": ["g"]}
        svc = _service("a", EDGES, groups)
        assert svc.anycast_target("g") == "a"

    def test_no_members(self):
        svc = _service("a", EDGES)
        assert svc.anycast_target("g") is None


class TestSourceBased:
    def test_flood_mask_is_full(self):
        svc = _service("a", EDGES)
        assert svc.source_bitmask("d", ServiceSpec(routing=ROUTING_FLOOD)) == (
            svc.links.full_mask()
        )

    def test_disjoint_mask_contains_two_paths(self):
        svc = _service("a", EDGES)
        mask = svc.source_bitmask("c", ServiceSpec(routing=ROUTING_DISJOINT, k=2))
        edges = set(svc.links.edges_of_mask(mask))
        assert ("a", "b") in edges and ("b", "c") in edges and ("a", "c") in edges

    def test_graph_mask_connects(self):
        svc = _service("a", EDGES)
        mask = svc.source_bitmask("d", ServiceSpec(routing=ROUTING_GRAPH))
        assert mask != 0

    def test_group_bitmask_unions_members(self):
        groups = {"c": ["g"], "d": ["g"]}
        svc = _service("a", EDGES, groups)
        spec = ServiceSpec(routing=ROUTING_DISJOINT, k=1)
        mask = svc.group_bitmask("g", spec)
        assert mask >= svc.source_bitmask("c", spec)

    def test_invalid_routing_name(self):
        svc = _service("a", EDGES)
        with pytest.raises(ValueError):
            svc.source_bitmask("d", ServiceSpec(routing="link-state"))

    def test_bitmask_neighbors_excludes_arrival(self):
        svc = _service("c", EDGES)
        idx = svc.links
        mask = idx.full_mask()
        all_nbrs = {n for n, __ in svc.bitmask_neighbors(mask)}
        assert all_nbrs == {"a", "b", "d"}
        without = {
            n for n, __ in svc.bitmask_neighbors(mask, exclude_bit=idx.bit("c", "a"))
        }
        assert without == {"b", "d"}
