"""Multicast shortest-path trees."""

from hypothesis import given, settings, strategies as st

from repro.alg.dijkstra import dijkstra
from repro.alg.graph import undirected
from repro.alg.trees import multicast_tree, tree_edges, tree_nodes

GRID = undirected(
    [
        ("a", "b", 1.0),
        ("b", "c", 1.0),
        ("a", "d", 1.0),
        ("d", "e", 1.0),
        ("b", "e", 1.0),
        ("e", "f", 1.0),
        ("c", "f", 1.0),
    ]
)


def test_tree_spans_members():
    tree = multicast_tree(GRID, "a", ["c", "f"])
    nodes = tree_nodes(tree)
    assert {"a", "c", "f"} <= nodes


def test_tree_is_acyclic_and_rooted():
    tree = multicast_tree(GRID, "a", ["c", "e", "f"])
    edges = tree_edges(tree)
    children = [c for __, c in edges]
    assert len(children) == len(set(children)), "node has two parents"
    assert all(parent != "a" or True for parent, __ in edges)


def test_source_only_member_gives_trivial_tree():
    tree = multicast_tree(GRID, "a", ["a"])
    assert tree == {"a": ()}


def test_unreachable_member_is_omitted():
    adj = dict(GRID)
    adj["lonely"] = {}
    tree = multicast_tree(adj, "a", ["lonely", "c"])
    assert "lonely" not in tree_nodes(tree)
    assert "c" in tree_nodes(tree)


def test_paths_in_tree_are_shortest():
    tree = multicast_tree(GRID, "a", ["f"])
    # Walk from a to f through the tree and measure.
    dist, __ = dijkstra(GRID, "a")
    depth = {"a": 0.0}
    frontier = ["a"]
    while frontier:
        node = frontier.pop()
        for child in tree.get(node, []):
            depth[child] = depth[node] + GRID[node][child]
            frontier.append(child)
    assert depth["f"] == dist["f"]


def test_same_inputs_same_tree():
    t1 = multicast_tree(GRID, "a", ["c", "f", "e"])
    t2 = multicast_tree(GRID, "a", ["c", "f", "e"])
    assert t1 == t2


@given(st.integers(min_value=2, max_value=9), st.data())
@settings(max_examples=40, deadline=None)
def test_property_tree_edge_count(n, data):
    """A tree touching m nodes has exactly m - 1 edges."""
    edges = [(i, i + 1, 1.0) for i in range(n - 1)]
    extra = data.draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=10,
        )
    )
    for u, v in extra:
        if u != v:
            edges.append((u, v, 1.0))
    adj = undirected(edges)
    members = data.draw(
        st.lists(st.integers(min_value=0, max_value=n - 1), min_size=1, max_size=n)
    )
    tree = multicast_tree(adj, 0, members)
    assert len(tree_edges(tree)) == len(tree_nodes(tree)) - 1
