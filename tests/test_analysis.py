"""Metrics, workloads, and scenario builders."""

import math

import pytest

from repro.analysis.metrics import (
    availability_gaps,
    delivered_seqs,
    flow_stats,
    latency_summary,
    percentile,
)
from repro.analysis.scenarios import continental_scenario, line_scenario
from repro.analysis.workloads import CbrSource, PoissonSource
from repro.core.message import Address, ServiceSpec
from repro.sim.trace import DeliveryRecord, TraceCollector


class TestLatencySummary:
    def test_basic_stats(self):
        summary = latency_summary([0.01, 0.02, 0.03, 0.04, 0.10])
        assert summary.count == 5
        assert summary.mean == pytest.approx(0.04)
        assert summary.p50 == 0.03
        assert summary.max == 0.10

    def test_empty_gives_nan(self):
        summary = latency_summary([])
        assert summary.count == 0
        assert math.isnan(summary.mean)

    def test_jitter_is_mean_consecutive_delta(self):
        summary = latency_summary([0.01, 0.03, 0.02])
        assert summary.jitter == pytest.approx((0.02 + 0.01) / 2)

    def test_single_sample_has_zero_jitter(self):
        assert latency_summary([0.05]).jitter == 0.0

    def test_scaled_ms(self):
        summary = latency_summary([0.05])
        assert summary.scaled_ms()["p50"] == pytest.approx(50.0)

    def test_percentile_requires_values(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.99) == 4.0
        assert percentile(values, 0.25) == 1.0


class TestFlowStats:
    def _trace(self):
        trace = TraceCollector()
        for seq in range(10):
            trace.record_send("f", seq, seq * 0.1, 100, "d:1")
        for seq in range(8):  # two lost
            trace.record_delivery("f", seq, seq * 0.1, seq * 0.1 + 0.05, "d:1")
        return trace

    def test_delivery_ratio(self):
        stats = flow_stats(self._trace(), "f", "d:1")
        assert stats.sent == 10
        assert stats.delivered == 8
        assert stats.delivery_ratio == pytest.approx(0.8)

    def test_within_deadline(self):
        stats = flow_stats(self._trace(), "f", "d:1", deadline=0.06)
        assert stats.within_deadline == pytest.approx(0.8)
        tight = flow_stats(self._trace(), "f", "d:1", deadline=0.01)
        assert tight.within_deadline == 0.0

    def test_after_excludes_warmup(self):
        stats = flow_stats(self._trace(), "f", "d:1", after=0.45)
        assert stats.sent == 5

    def test_delivered_seqs(self):
        assert delivered_seqs(self._trace(), "f", "d:1") == set(range(8))


def test_availability_gaps_detects_outage():
    records = []
    times = [i * 0.1 for i in range(20)] + [5.0 + i * 0.1 for i in range(20)]
    for i, t in enumerate(times):
        records.append(DeliveryRecord("f", i, t, t, "d"))
    gaps = availability_gaps(records, expected_interval=0.1)
    assert len(gaps) == 1
    start, duration = gaps[0]
    assert duration == pytest.approx(5.0 - 1.9)


def test_availability_no_gaps_on_steady_stream():
    records = [DeliveryRecord("f", i, i * 0.1, i * 0.1, "d") for i in range(50)]
    assert availability_gaps(records, 0.1) == []


class TestWorkloads:
    def test_cbr_rate(self):
        scn = line_scenario(201, n_hops=1)
        tx = scn.overlay.client("h0")
        scn.overlay.client("h1", 7, on_message=lambda m: None)
        source = CbrSource(scn.sim, tx, Address("h1", 7), rate_pps=100.0,
                           duration=2.0).start()
        scn.run_for(3.0)
        assert source.sent == pytest.approx(200, abs=2)

    def test_cbr_stop(self):
        scn = line_scenario(202, n_hops=1)
        tx = scn.overlay.client("h0")
        source = CbrSource(scn.sim, tx, Address("h1", 7), rate_pps=100.0).start()
        scn.run_for(1.0)
        source.stop()
        sent = source.sent
        scn.run_for(1.0)
        assert source.sent == sent

    def test_cbr_validates_rate(self):
        scn = line_scenario(203, n_hops=1)
        tx = scn.overlay.client("h0")
        with pytest.raises(ValueError):
            CbrSource(scn.sim, tx, Address("h1", 7), rate_pps=0.0)

    def test_poisson_mean_rate(self):
        scn = line_scenario(204, n_hops=1)
        tx = scn.overlay.client("h0")
        rng = scn.rngs.stream("poisson-test")
        source = PoissonSource(scn.sim, rng, tx, Address("h1", 7),
                               rate_pps=200.0).start()
        scn.run_for(5.0)
        assert 800 < source.sent < 1200

    def test_payload_fn(self):
        scn = line_scenario(205, n_hops=1)
        got = []
        scn.overlay.client("h1", 7, on_message=lambda m: got.append(m.payload))
        tx = scn.overlay.client("h0")
        CbrSource(scn.sim, tx, Address("h1", 7), rate_pps=50.0,
                  payload_fn=lambda seq: {"n": seq}).start()
        scn.run_for(0.1)
        assert got and got[0] == {"n": 0}


class TestScenarios:
    def test_line_scenario_endpoints_only(self):
        scn = line_scenario(206, n_hops=5, overlay_on_every_hop=False)
        assert set(scn.overlay.nodes) == {"h0", "h5"}
        link = scn.overlay.nodes["h0"].links["h5"]
        assert link.latency_est == pytest.approx(0.050, abs=0.005)

    def test_line_scenario_every_hop(self):
        scn = line_scenario(207, n_hops=5)
        assert len(scn.overlay.nodes) == 6
        assert scn.overlay.converged()

    def test_continental_scenario_converges(self):
        scn = continental_scenario(208)
        assert scn.overlay.converged()
        assert len(scn.overlay.nodes) == 12

    def test_continental_three_isps(self):
        scn = continental_scenario(209, isps=["ispA", "ispB", "ispC"])
        link = scn.overlay.nodes["site-NYC"].links["site-WAS"]
        assert len(link.carriers) == 4  # 3 on-net + native
