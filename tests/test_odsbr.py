"""ODSBR-style fault-localizing routing (Sec VI's invited alternative)."""

import pytest

from repro.analysis.scenarios import continental_scenario, triangle_scenario
from repro.core.message import Address, ROUTING_FLOOD, ROUTING_PATH, ServiceSpec
from repro.security.adversary import Blackhole
from repro.security.odsbr import OdsbrSession


class TestSourcePathRouting:
    def test_explicit_path_is_followed(self):
        scn = triangle_scenario(seed=2101)
        got = []
        scn.overlay.client("hz", 7, on_message=got.append)
        tx = scn.overlay.client("hx")
        # Force the long way round even though hx-hz is direct.
        svc = ServiceSpec.make(routing=ROUTING_PATH, path=("hx", "hy", "hz"))
        tx.send(Address("hz", 7), service=svc)
        scn.run_for(1.0)
        assert len(got) == 1
        assert scn.overlay.nodes["hy"].flows.entry(got[0].flow) is not None

    def test_invalid_path_rejected(self):
        scn = triangle_scenario(seed=2102)
        tx = scn.overlay.client("hx")
        svc = ServiceSpec.make(routing=ROUTING_PATH, path=("hy", "hz"))
        with pytest.raises(ValueError):
            tx.send(Address("hz", 7), service=svc)


def _drive(session, scn, count, rate=50.0):
    for __ in range(count):
        session.send()
        scn.run_for(1.0 / rate)


def _drive_until_avoided(session, scn, victims, max_rounds=15):
    """ODSBR localizes *links*; excising a Byzantine node can take one
    round per incident link (and paths may oscillate between several
    compromised nodes until each is fenced). Drive until the current
    path avoids every victim."""
    if isinstance(victims, str):
        victims = [victims]
    rounds = 0
    while any(v in session.path for v in victims) and rounds < max_rounds:
        _drive(session, scn, 100)
        scn.run_for(2.0)
        rounds += 1
    return rounds


class TestOdsbr:
    def test_clean_network_never_probes(self):
        scn = continental_scenario(seed=2103)
        session = OdsbrSession(scn.overlay, "site-NYC", "site-LAX")
        _drive(session, scn, 60)
        scn.run_for(1.0)
        assert session.stats.acked == session.stats.sent
        assert session.stats.probe_rounds == 0

    def test_localizes_and_routes_around_a_blackhole(self):
        scn = continental_scenario(seed=2104)
        overlay = scn.overlay
        session = OdsbrSession(scn.overlay, "site-NYC", "site-LAX")
        victim = session.path[1]
        overlay.compromise(victim, Blackhole())
        _drive_until_avoided(session, scn, victim)
        assert session.stats.probe_rounds >= 1
        assert session.stats.reroutes >= 1
        # Localization converges on the compromised node (echoes lost
        # *behind* the node bias some penalties toward the source — the
        # known ODSBR response-loss bias — but the node's own links
        # must dominate).
        assert session.stats.penalized_links
        assert any(victim in link for link in session.stats.penalized_links)
        assert victim not in session.path
        # After the node is fully excised, traffic flows again.
        before = session.stats.acked
        _drive(session, scn, 40)
        scn.run_for(1.0)
        assert session.stats.acked - before >= 38

    def test_cost_is_single_path_not_flooding(self):
        """The trade-off vs Sec IV-B: ODSBR's marginal cost is ~one
        path (data + ack) per message where constrained flooding pays
        every overlay link — the price being multi-second reaction
        instead of instant masking. Hello/control baseline is measured
        separately and subtracted."""

        def marginal_cost(use_odsbr, seed):
            scn = continental_scenario(seed=seed)
            count, rate = 60, 50.0
            duration = count / rate + 1.0
            if use_odsbr:
                session = OdsbrSession(scn.overlay, "site-NYC", "site-LAX")
            else:
                scn.overlay.client("site-LAX", 7, on_message=lambda m: None)
                tx = scn.overlay.client("site-NYC")
            c0 = scn.internet.counters.get("datagrams-sent")
            scn.run_for(duration)  # idle window: pure control baseline
            c1 = scn.internet.counters.get("datagrams-sent")
            if use_odsbr:
                _drive(session, scn, count, rate)
                scn.run_for(1.0)
            else:
                for __ in range(count):
                    tx.send(Address("site-LAX", 7),
                            service=ServiceSpec(routing=ROUTING_FLOOD))
                    scn.run_for(1.0 / rate)
                scn.run_for(1.0)
            c2 = scn.internet.counters.get("datagrams-sent")
            return ((c2 - c1) - (c1 - c0)) / count

        odsbr_cost = marginal_cost(True, 2105)
        flood_cost = marginal_cost(False, 2106)
        assert odsbr_cost > 0
        # One 3-hop path + ack vs every one of the 21 overlay links.
        assert odsbr_cost < 0.5 * flood_cost

    def test_repeated_faults_keep_being_avoided(self):
        """A second blackhole appearing on the *new* path is localized
        and excised too."""
        scn = continental_scenario(seed=2107)
        overlay = scn.overlay
        session = OdsbrSession(scn.overlay, "site-DAL", "site-CHI")
        first_victim = session.path[1]
        overlay.compromise(first_victim, Blackhole())
        _drive_until_avoided(session, scn, first_victim)
        assert first_victim not in session.path
        second_victim = session.path[1]
        if second_victim != "site-CHI":
            overlay.compromise(second_victim, Blackhole())
            # With two Byzantine nodes the path may oscillate between
            # them until both are fenced; track both.
            _drive_until_avoided(session, scn, [first_victim, second_victim])
            assert second_victim not in session.path
            assert first_victim not in session.path
        before = session.stats.acked
        _drive(session, scn, 40)
        scn.run_for(1.0)
        assert session.stats.acked - before >= 35
