"""Content-addressed route computation: converged replicas share one
engine computation per artifact; diverged replicas don't; the bounded
LRU stays correct under churn; per-node adaptive behaviour is intact."""

import pytest

from repro.core.compute import RouteComputeEngine
from repro.core.linkstate import GroupDatabase, TopologyDatabase
from repro.core.message import ROUTING_ADAPTIVE, ROUTING_DISJOINT, ServiceSpec
from repro.core.routing import LinkIndex, RoutingService
from repro.sim.trace import Counter

EDGES = [("a", "b", 1.0), ("b", "c", 1.0), ("a", "c", 3.0), ("c", "d", 1.0)]
LINKS = [(u, v) for u, v, __ in EDGES]


def _fill(topo: TopologyDatabase, edges, seq: int = 1, overrides=None):
    """Feed a replica one LSU per origin for a symmetric edge list."""
    nodes: dict = {}
    for a, b, w in edges:
        nodes.setdefault(a, {})[b] = w
        nodes.setdefault(b, {})[a] = w
    for origin in sorted(nodes):
        costs = dict(nodes[origin])
        if overrides and origin in overrides:
            costs = overrides[origin]
        topo.update(origin, seq, costs)
    return nodes


def _replica(engine, node_id, edges, groups=None, **fill_kwargs):
    """One node's replicas + routing service wired to a shared engine."""
    topo = TopologyDatabase()
    _fill(topo, edges, **fill_kwargs)
    gdb = GroupDatabase()
    for origin, gs in (groups or {}).items():
        gdb.update(origin, 1, gs)
    svc = RoutingService(node_id, topo, gdb, LinkIndex(LINKS), engine=engine)
    return svc


class TestFingerprint:
    def test_converged_replicas_hash_equal_despite_version_skew(self):
        db1 = TopologyDatabase()
        _fill(db1, EDGES)
        db2 = TopologyDatabase()
        _fill(db2, EDGES)
        # Replica 2 additionally processed periodic refreshes (same
        # costs, higher seqs): version counters diverge, content doesn't.
        _fill(db2, EDGES, seq=7)
        assert db2.version > db1.version
        assert db1.fingerprint == db2.fingerprint

    def test_content_change_moves_fingerprint(self):
        db = TopologyDatabase()
        _fill(db, EDGES)
        before = db.fingerprint
        db.update("b", 9, {"a": 1.0, "c": None})  # b-c down
        assert db.fingerprint != before

    def test_fingerprint_is_arrival_order_independent(self):
        db1 = TopologyDatabase()
        for origin, seq, costs in [("a", 1, {"b": 1.0}), ("b", 1, {"a": 1.0})]:
            db1.update(origin, seq, costs)
        db2 = TopologyDatabase()
        for origin, seq, costs in [("b", 3, {"a": 1.0}), ("a", 2, {"b": 1.0})]:
            db2.update(origin, seq, costs)
        assert db1.fingerprint == db2.fingerprint

    def test_group_fingerprint_tracks_membership_content(self):
        g1 = GroupDatabase()
        g1.update("a", 1, ["g"])
        g2 = GroupDatabase()
        g2.update("a", 5, ["g"])  # different seq, same content
        assert g1.fingerprint == g2.fingerprint
        g2.update("a", 6, ["g", "h"])
        assert g1.fingerprint != g2.fingerprint


class TestSharing:
    def test_converged_replicas_share_one_computation(self):
        counters = Counter()
        engine = RouteComputeEngine(counters=counters)
        svc1 = _replica(engine, "a", EDGES)
        svc2 = _replica(engine, "b", EDGES)
        assert svc1.next_hop("d") == "b"
        assert svc2.next_hop("d") == "c"
        assert counters.get("route.compute") == 1
        assert counters.get("route.hit") == 1

    def test_shared_artifacts_are_the_same_object(self):
        engine = RouteComputeEngine()
        svc1 = _replica(engine, "a", EDGES)
        svc2 = _replica(engine, "b", EDGES)
        svc1._refresh()
        svc2._refresh()
        t1 = engine.table(svc1._fingerprint, svc1._adj, "d")
        t2 = engine.table(svc2._fingerprint, svc2._adj, "d")
        assert t1 is t2

    def test_multicast_tree_shared_across_replicas(self):
        counters = Counter()
        engine = RouteComputeEngine(counters=counters)
        groups = {"c": ["g"], "d": ["g"]}
        services = [
            _replica(engine, n, EDGES, groups) for n in ("a", "b", "c", "d")
        ]
        children = {s.node_id: s.multicast_children("a", "g") for s in services}
        assert children == {"a": ["b"], "b": ["c"], "c": ["d"], "d": []}
        tree_computes = counters.get("route.compute")
        assert tree_computes == 1
        assert counters.get("route.hit") == 3

    def test_diverged_replicas_get_distinct_artifacts(self):
        counters = Counter()
        engine = RouteComputeEngine(counters=counters)
        svc1 = _replica(engine, "a", EDGES)
        # Replica 2 missed b's latest LSU: its b-record is stale.
        svc2 = _replica(
            engine, "b", EDGES, overrides={"b": {"a": 2.5, "c": 1.0}}
        )
        assert svc1.topo.fingerprint != svc2.topo.fingerprint
        svc1.next_hop("d")
        svc2.next_hop("d")
        assert counters.get("route.compute") == 2
        assert counters.get("route.hit") == 0

    def test_disjoint_and_graph_masks_ride_the_engine(self):
        counters = Counter()
        engine = RouteComputeEngine(counters=counters)
        svc1 = _replica(engine, "a", EDGES)
        svc2 = _replica(engine, "a", EDGES)
        spec = ServiceSpec(routing=ROUTING_DISJOINT, k=2)
        mask1 = svc1.source_bitmask("c", spec)
        computes = counters.get("route.compute")
        mask2 = svc2.source_bitmask("c", spec)
        assert mask1 == mask2
        assert counters.get("route.compute") == computes  # pure hit
        assert counters.get("route.hit") >= 1


class TestEviction:
    def test_eviction_under_churn_stays_correct(self):
        counters = Counter()
        engine = RouteComputeEngine(counters=counters, capacity=2)
        topo = TopologyDatabase()
        _fill(topo, EDGES)
        svc = RoutingService("a", topo, GroupDatabase(), LinkIndex(LINKS),
                             engine=engine)
        # Cycle through 3 distinct topologies repeatedly: only 2 fit.
        states = [
            {"a": 1.0, "c": 1.0},          # baseline b-record
            {"a": 1.0, "c": None},         # b-c down
            {"a": 4.0, "c": 1.0},          # a-b degraded
        ]
        expected = []
        seq = 1
        for round_ in range(3):
            for costs in states:
                seq += 1
                topo.update("b", seq, costs)
                expected.append(svc.next_hop("d"))
        assert counters.get("route.evict") > 0
        # Same churn against a huge cache gives identical decisions.
        fresh = RoutingService("a", TopologyDatabase(), GroupDatabase(),
                               LinkIndex(LINKS))
        _fill(fresh.topo, EDGES)
        seq, check = 1, []
        for round_ in range(3):
            for costs in states:
                seq += 1
                fresh.topo.update("b", seq, costs)
                check.append(fresh.next_hop("d"))
        assert expected == check

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            RouteComputeEngine(capacity=0)


class TestPerNodeBehaviour:
    """Node-relative state (baselines, degraded checks) stays local even
    with a shared engine: the adaptive tests from test_adaptive_routing
    must hold unchanged when every node delegates to one engine."""

    MESH = [
        ("s", "a", 1.0), ("s", "b", 1.0), ("s", "c", 1.0),
        ("a", "m", 1.0), ("b", "m", 1.0), ("c", "n", 1.0),
        ("m", "n", 1.0), ("m", "x", 1.0), ("n", "y", 1.0),
        ("x", "t", 1.0), ("y", "t", 1.0), ("x", "y", 1.0),
    ]

    def _mesh_service(self, engine, node="s", cost_overrides=None):
        topo = TopologyDatabase()
        nodes = _fill(topo, self.MESH)
        links = [(u, v) for u, v, __ in self.MESH]
        svc = RoutingService(node, topo, GroupDatabase(), LinkIndex(links),
                             engine=engine)
        svc.adjacency()  # record baselines
        if cost_overrides:
            for origin, nbrs in nodes.items():
                updated = {
                    v: cost_overrides.get((origin, v), w)
                    for v, w in nbrs.items()
                }
                topo.update(origin, 2, updated)
        return svc

    def test_adaptive_redundancy_stays_per_node(self):
        engine = RouteComputeEngine()
        degraded = self._mesh_service(
            engine, "s", {("s", "a"): 10.0, ("a", "s"): 10.0}
        )
        adaptive = ServiceSpec(routing=ROUTING_ADAPTIVE)
        mask = degraded.source_bitmask("t", adaptive)
        edges = set(degraded.links.edges_of_mask(mask))
        assert sum(1 for e in edges if "s" in e) == 3  # fans out at s

        # A late-joining node on the same engine first hears the already
        # -degraded costs: those become its baselines, so nothing looks
        # degraded to *it* and it keeps the lean two-path graph.
        topo = TopologyDatabase()
        nodes: dict = {}
        for a, b, w in self.MESH:
            nodes.setdefault(a, {})[b] = w
            nodes.setdefault(b, {})[a] = w
        for origin, nbrs in nodes.items():
            topo.update(origin, 1, {
                v: {("s", "a"): 10.0, ("a", "s"): 10.0}.get((origin, v), w)
                for v, w in nbrs.items()
            })
        links = [(u, v) for u, v, __ in self.MESH]
        late = RoutingService("s", topo, GroupDatabase(), LinkIndex(links),
                              engine=engine)
        clean_mask = late.source_bitmask("t", adaptive)
        disjoint_mask = late.source_bitmask(
            "t", ServiceSpec(routing=ROUTING_DISJOINT, k=2)
        )
        assert clean_mask == disjoint_mask
        assert mask != clean_mask

    def test_determinism_debug_mode(self):
        engine = RouteComputeEngine(check_determinism=True)
        svc = self._mesh_service(engine, "s")
        assert svc.next_hop("t") is not None
        assert svc.source_bitmask("t", ServiceSpec(routing=ROUTING_ADAPTIVE))


class TestNetworkIntegration:
    def test_engine_counters_visible_on_a_live_overlay(self):
        from tests.conftest import make_triangle_overlay

        scn = make_triangle_overlay(seed=991)
        overlay = scn.overlay
        for node in overlay.nodes.values():
            assert node.routing.engine is overlay.route_engine
        for src in overlay.nodes:
            for dst in overlay.nodes:
                if src != dst:
                    overlay.nodes[src].routing.next_hop(dst)
        counters = overlay.counters.as_dict()
        assert counters.get("route.compute", 0) > 0
        assert counters.get("route.hit", 0) > 0
        # Converged triangle: one table per destination (3 computes),
        # each shared with the other two querying nodes.
        assert counters["route.hit"] >= 3
