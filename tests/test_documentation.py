"""Documentation coverage: every public item in the library carries a
docstring (deliverable (e) — enforced mechanically, not by review)."""

import importlib
import inspect
import pkgutil

import repro


def _public_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def _is_local(obj, module) -> bool:
    return getattr(obj, "__module__", None) == module.__name__


def test_every_module_has_a_docstring():
    undocumented = [m.__name__ for m in _public_modules() if not m.__doc__]
    assert undocumented == []


def test_every_public_class_has_a_docstring():
    undocumented = []
    for module in _public_modules():
        for name, obj in vars(module).items():
            if name.startswith("_") or not inspect.isclass(obj):
                continue
            if _is_local(obj, module) and not obj.__doc__:
                undocumented.append(f"{module.__name__}.{name}")
    assert undocumented == []


def test_every_public_function_has_a_docstring():
    undocumented = []
    for module in _public_modules():
        for name, obj in vars(module).items():
            if name.startswith("_") or not inspect.isfunction(obj):
                continue
            if _is_local(obj, module) and not obj.__doc__:
                undocumented.append(f"{module.__name__}.{name}")
    assert undocumented == []


def test_public_methods_of_core_api_are_documented():
    """The classes a downstream user touches first get the strict
    treatment: every public method documented."""
    from repro.core.client import OverlayClient
    from repro.core.network import OverlayNetwork
    from repro.core.node import OverlayNode
    from repro.protocols.base import LinkProtocol

    undocumented = []
    for cls in (OverlayClient, OverlayNetwork, OverlayNode, LinkProtocol):
        for name, member in vars(cls).items():
            if name.startswith("_") or not callable(member):
                continue
            if not getattr(member, "__doc__", None):
                undocumented.append(f"{cls.__name__}.{name}")
    assert undocumented == []
