"""Brute-force oracle for the *min-cost* property of the disjoint-paths
algorithm (the count property is oracled against networkx elsewhere)."""

from itertools import permutations

import pytest
from hypothesis import given, settings, strategies as st

from repro.alg.dijkstra import path_cost
from repro.alg.disjoint import node_disjoint_paths
from repro.alg.graph import undirected


def _all_simple_paths(adj, src, dst, max_len=7):
    """Every simple path src..dst (small graphs only)."""
    paths = []

    def walk(node, path):
        if len(path) > max_len:
            return
        if node == dst:
            paths.append(list(path))
            return
        for nxt in adj.get(node, {}):
            if nxt not in path:
                path.append(nxt)
                walk(nxt, path)
                path.pop()

    walk(src, [src])
    return paths


def _brute_force_best_pair(adj, src, dst):
    """Cheapest pair of node-disjoint paths, by exhaustive search."""
    paths = _all_simple_paths(adj, src, dst)
    best = None
    for i, p1 in enumerate(paths):
        interior1 = set(p1[1:-1])
        for p2 in paths[i + 1 :]:
            if interior1 & set(p2[1:-1]):
                continue
            cost = path_cost(adj, p1) + path_cost(adj, p2)
            if best is None or cost < best:
                best = cost
    return best


@st.composite
def small_graphs(draw):
    n = draw(st.integers(min_value=4, max_value=6))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    count = draw(st.integers(min_value=n, max_value=len(possible)))
    chosen = draw(st.permutations(possible))[:count]
    edges = [
        (i, j, draw(st.floats(min_value=0.1, max_value=9.0))) for i, j in chosen
    ]
    return n, edges


@given(small_graphs())
@settings(max_examples=40, deadline=None)
def test_property_two_disjoint_paths_are_min_total_cost(graph):
    n, edges = graph
    adj = undirected(edges)
    for i in range(n):
        adj.setdefault(i, {})
    src, dst = 0, n - 1
    result = node_disjoint_paths(adj, src, dst, 2)
    oracle = _brute_force_best_pair(adj, src, dst)
    if oracle is None:
        assert len(result) < 2
        return
    assert len(result) == 2
    total = sum(path_cost(adj, p) for p in result)
    assert total == pytest.approx(oracle, rel=1e-6)


def test_known_min_cost_example():
    adj = undirected([
        ("s", "a", 1.0), ("a", "t", 1.0),        # cheap path: 2
        ("s", "b", 2.0), ("b", "t", 2.0),        # mid path: 4
        ("s", "c", 5.0), ("c", "t", 5.0),        # dear path: 10
    ])
    paths = node_disjoint_paths(adj, "s", "t", 2)
    total = sum(path_cost(adj, p) for p in paths)
    assert total == pytest.approx(6.0)  # 2 + 4, never the 10
