"""Overlay node routing behaviours on small overlays."""

import pytest

from repro.core.message import (
    Address,
    LINK_RELIABLE,
    ROUTING_DISJOINT,
    ROUTING_FLOOD,
    ServiceSpec,
)
from tests.conftest import make_triangle_overlay


def _send_and_run(scn, src, dst_addr, service=None, run=1.0):
    got = []
    rx = scn.overlay.client(dst_addr.node, dst_addr.port, on_message=got.append)
    tx = scn.overlay.client(src)
    tx.send(dst_addr, payload="ping", service=service)
    scn.run_for(run)
    return got


def test_unicast_delivery():
    scn = make_triangle_overlay()
    got = _send_and_run(scn, "hx", Address("hz", 7))
    assert len(got) == 1
    assert got[0].payload == "ping"


def test_unicast_to_unknown_port_dropped():
    scn = make_triangle_overlay()
    tx = scn.overlay.client("hx")
    tx.send(Address("hz", 999))
    scn.run_for(1.0)
    assert scn.overlay.counters.get("no-local-client") == 1


def test_delivery_latency_includes_proc_delay():
    scn = make_triangle_overlay()
    got = []
    rx = scn.overlay.client("hz", 7, on_message=lambda m: got.append(scn.sim.now - m.sent_at))
    tx = scn.overlay.client("hx")
    tx.send(Address("hz", 7))
    scn.run_for(1.0)
    # One 10 ms leg + origin and egress processing.
    assert 0.010 < got[0] < 0.015


def test_reroute_after_link_failure():
    """Sub-second rerouting: hx->hz moves to hx-hy-hz when the direct
    leg's fiber dies, long before the underlay reconverges."""
    scn = make_triangle_overlay(seed=9)
    overlay = scn.overlay
    assert overlay.overlay_path("hx", "hz") == ["hx", "hz"]
    scn.internet.isps["tri"].fail_link("x", "z")
    fail_at = scn.sim.now
    scn.run_for(1.0)
    assert overlay.overlay_path("hx", "hz") == ["hx", "hy", "hz"]
    got = _send_and_run(scn, "hx", Address("hz", 7))
    assert len(got) == 1


def test_forwarding_through_middle_node():
    scn = make_triangle_overlay(seed=9)
    scn.internet.isps["tri"].fail_link("x", "z")
    scn.run_for(1.0)
    before = scn.overlay.counters.get("forwarded")
    got = _send_and_run(scn, "hx", Address("hz", 7))
    assert got
    assert scn.overlay.counters.get("forwarded") > before


def test_multicast_delivers_to_all_members_once():
    scn = make_triangle_overlay()
    got_y, got_z = [], []
    scn.overlay.client("hy", 5, on_message=got_y.append).join("mcast:g")
    scn.overlay.client("hz", 5, on_message=got_z.append).join("mcast:g")
    scn.run_for(1.0)  # GSU flood
    tx = scn.overlay.client("hx")
    tx.send(Address("mcast:g", 5))
    scn.run_for(1.0)
    assert len(got_y) == 1 and len(got_z) == 1


def test_multicast_sender_need_not_join():
    scn = make_triangle_overlay()
    got = []
    scn.overlay.client("hy", 5, on_message=got.append).join("mcast:g")
    scn.run_for(1.0)
    scn.overlay.client("hx").send(Address("mcast:g", 5))
    scn.run_for(1.0)
    assert len(got) == 1


def test_multicast_after_leave_stops_delivery():
    scn = make_triangle_overlay()
    got = []
    rx = scn.overlay.client("hy", 5, on_message=got.append)
    rx.join("mcast:g")
    scn.run_for(1.0)
    rx.leave("mcast:g")
    scn.run_for(1.0)
    scn.overlay.client("hx").send(Address("mcast:g", 5))
    scn.run_for(1.0)
    assert got == []


def test_local_multicast_members_receive():
    scn = make_triangle_overlay()
    got = []
    scn.overlay.client("hx", 5, on_message=got.append).join("mcast:g")
    scn.run_for(1.0)
    scn.overlay.client("hx").send(Address("mcast:g", 5))
    scn.run_for(0.5)
    assert len(got) == 1


def test_anycast_picks_nearest_member():
    scn = make_triangle_overlay()
    got_y, got_z = [], []
    scn.overlay.client("hy", 5, on_message=got_y.append).join("acast:g")
    scn.overlay.client("hz", 5, on_message=got_z.append).join("acast:g")
    scn.run_for(1.0)
    scn.overlay.client("hx").send(Address("acast:g", 5))
    scn.run_for(1.0)
    assert len(got_y) + len(got_z) == 1  # exactly one member


def test_anycast_no_members_rejected():
    scn = make_triangle_overlay()
    tx = scn.overlay.client("hx")
    assert not tx.send(Address("acast:empty", 5))
    assert scn.overlay.counters.get("anycast-no-member") == 1


def test_anycast_rerosolves_when_member_leaves():
    scn = make_triangle_overlay()
    got_y, got_z = [], []
    ry = scn.overlay.client("hy", 5, on_message=got_y.append)
    ry.join("acast:g")
    scn.run_for(1.0)
    ry.close()
    rz = scn.overlay.client("hz", 5, on_message=got_z.append)
    rz.join("acast:g")
    scn.run_for(1.0)
    scn.overlay.client("hx").send(Address("acast:g", 5))
    scn.run_for(1.0)
    assert got_z and not got_y


def test_source_routed_disjoint_delivery():
    scn = make_triangle_overlay()
    got = _send_and_run(
        scn, "hx", Address("hz", 7), ServiceSpec(routing=ROUTING_DISJOINT, k=2)
    )
    assert len(got) == 1  # delivered once despite two copies


def test_flooding_delivers_once():
    scn = make_triangle_overlay()
    got = _send_and_run(scn, "hx", Address("hz", 7), ServiceSpec(routing=ROUTING_FLOOD))
    assert len(got) == 1


def test_flooding_duplicates_are_absorbed():
    scn = make_triangle_overlay()
    sent_before = scn.internet.counters.get("datagrams-sent")
    got = _send_and_run(scn, "hx", Address("hz", 7), ServiceSpec(routing=ROUTING_FLOOD))
    assert len(got) == 1
    # Flooding used more datagrams than a single path would.
    used = scn.internet.counters.get("datagrams-sent") - sent_before
    assert used > 3  # strictly more than hello traffic for one packet


def test_reliable_link_protocol_on_overlay():
    # Latency-only routing costs keep the route pinned; under 20% loss,
    # loss-aware costs would flip routes mid-burst and drop in-flight
    # messages at the routing level (tested elsewhere).
    from repro.core.config import OverlayConfig

    scn = make_triangle_overlay(
        loss_rate=0.2, seed=11, config=OverlayConfig(loss_cost_factor=0.0)
    )
    got = []
    scn.overlay.client("hz", 7, on_message=got.append)
    tx = scn.overlay.client("hx")
    svc = ServiceSpec(link=LINK_RELIABLE, ordered=True)
    for __ in range(100):
        tx.send(Address("hz", 7), service=svc)
    scn.run_for(10.0)
    assert len(got) == 100
    assert [m.seq for m in got] == list(range(100))


def test_ttl_guards_against_loops():
    scn = make_triangle_overlay()
    tx = scn.overlay.client("hx")
    msg_count = scn.overlay.counters.get("overlay-ttl-exceeded")
    assert msg_count == 0


def test_parallel_overlays_are_independent():
    """Sec II-B: multiple overlays can run in parallel over the same
    underlay."""
    from repro.core.network import OverlayNetwork
    from repro.net.topologies import triangle_internet
    from repro.sim.events import Simulator
    from repro.sim.rng import RngRegistry

    sim = Simulator()
    rngs = RngRegistry(5)
    inet = triangle_internet(sim, rngs)
    ov1 = OverlayNetwork(inet, ["hx", "hy", "hz"],
                         [("hx", "hy"), ("hy", "hz"), ("hx", "hz")])
    ov2 = OverlayNetwork(inet, ["hx", "hy"], [("hx", "hy")])
    ov1.start()
    ov2.start()
    sim.run(until=2.0)
    got1, got2 = [], []
    ov1.client("hz", 7, on_message=got1.append)
    ov2.client("hy", 7, on_message=got2.append)
    ov1.client("hx").send(Address("hz", 7))
    ov2.client("hx").send(Address("hy", 7))
    sim.run(until=3.0)
    assert len(got1) == 1 and len(got2) == 1
