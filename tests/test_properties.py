"""Property-based tests on core invariants (hypothesis)."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.config import OverlayConfig
from repro.core.linkstate import DedupCache
from repro.core.message import Address, OverlayMessage, ServiceSpec
from repro.core.session import ReorderBuffer
from repro.sim.events import Simulator


class _FakeCounters:
    def __init__(self):
        self.values = {}

    def add(self, name, amount=1.0):
        self.values[name] = self.values.get(name, 0.0) + amount


class _FakeNode:
    def __init__(self, sim):
        self.sim = sim
        self.counters = _FakeCounters()


class _FakeSession:
    """Just enough session surface to drive a ReorderBuffer."""

    def __init__(self):
        self.sim = Simulator()
        self.node = _FakeNode(self.sim)
        self.delivered = []

    def hand_to_client(self, endpoint, msg):
        self.delivered.append(msg.seq)


def _msg(seq, deadline=None, group=False):
    dst = Address("mcast:g" if group else "n", 1)
    return OverlayMessage(
        flow="f", seq=seq, src=Address("s", 1), dst=dst,
        service=ServiceSpec(ordered=True, deadline=deadline),
        origin="s", sent_at=0.0,
    )


class TestReorderBufferProperties:
    @given(st.permutations(range(12)))
    @settings(max_examples=60, deadline=None)
    def test_any_arrival_order_delivers_in_order(self, order):
        session = _FakeSession()
        buffer = ReorderBuffer(session, endpoint=None)
        for seq in order:
            buffer.push(_msg(seq))
        assert session.delivered == list(range(12))

    @given(
        st.sets(st.integers(min_value=0, max_value=19), min_size=1),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_unicast_losses_block_but_never_reorder(self, arrived, rnd):
        session = _FakeSession()
        buffer = ReorderBuffer(session, endpoint=None)
        order = sorted(arrived)
        rnd.shuffle(order)
        for seq in order:
            buffer.push(_msg(seq))
        # Without a deadline, delivery is the contiguous prefix from 0.
        expected = []
        seq = 0
        while seq in arrived:
            expected.append(seq)
            seq += 1
        assert session.delivered == expected

    @given(st.permutations(range(10)), st.integers(min_value=0, max_value=9))
    @settings(max_examples=60, deadline=None)
    def test_deadline_skip_eventually_delivers_everything_received(
        self, order, missing
    ):
        session = _FakeSession()
        buffer = ReorderBuffer(session, endpoint=None)
        for seq in order:
            if seq != missing:
                buffer.push(_msg(seq, deadline=0.1))
        session.sim.run(until=10.0)  # let skip timers fire
        assert session.delivered == sorted(session.delivered)
        assert set(session.delivered) == set(range(10)) - {missing}

    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=1,
                    max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_duplicates_never_delivered_twice(self, seqs):
        session = _FakeSession()
        buffer = ReorderBuffer(session, endpoint=None)
        for seq in seqs:
            buffer.push(_msg(seq, deadline=0.05))
        session.sim.run(until=10.0)
        assert len(session.delivered) == len(set(session.delivered))
        assert session.delivered == sorted(session.delivered)


class TestDedupCacheProperties:
    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 3)),
                    max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_at_most_one_delivery_per_key(self, events):
        cache = DedupCache(64)
        first_seen = set()
        for key, __ in events:
            fresh = not cache.already_delivered(("f", key))
            if key in first_seen:
                # Eviction may forget old keys, but a key seen recently
                # enough to still be cached must not deliver twice; a
                # *fresh* verdict after eviction is acceptable. What is
                # never acceptable: two fresh verdicts without eviction.
                pass
            else:
                assert fresh
                first_seen.add(key)

    @given(st.lists(st.tuples(st.integers(0, 10), st.integers(0, 7)),
                    max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_links_sent_is_monotonic_union(self, events):
        cache = DedupCache(1000)
        reference: dict = {}
        for key, bit in events:
            cache.mark_sent(key, 1 << bit)
            reference[key] = reference.get(key, 0) | (1 << bit)
            assert cache.links_sent(key) == reference[key]


class TestSchedulerInvariants:
    def _protocol(self):
        from tests.conftest import make_two_node_line

        scn = make_two_node_line(
            seed=801, config=OverlayConfig(access_capacity_bps=1_000_000.0)
        )
        node = scn.overlay.nodes["h0"]
        return scn, node.protocol_for("h1", "it-priority")

    @given(st.dictionaries(st.integers(min_value=0, max_value=5),
                           st.integers(min_value=1, max_value=20),
                           min_size=2, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_round_robin_serves_backlogged_sources_evenly(self, backlogs):
        """While several sources have backlog, no source is served twice
        before another backlogged source is served once (the fairness
        property that defeats the flooding attack)."""
        from collections import deque

        scn, protocol = self._protocol()
        for source, backlog in backlogs.items():
            name = f"src{source}"
            protocol._queues[name] = deque(_msg(i) for i in range(backlog))
            protocol._rr.append(name)
        served: dict[str, int] = {name: 0 for name in protocol._queues}
        while True:
            before = {n: len(q) for n, q in protocol._queues.items()}
            if protocol._dequeue() is None:
                break
            after = {n: len(q) for n, q in protocol._queues.items()}
            source = next(n for n in before if after[n] == before[n] - 1)
            served[source] += 1
            # Fairness invariant: among sources that still had backlog
            # before this service, counts never diverge by more than 1.
            active_counts = [
                served[n] for n in before if before[n] > 0
            ]
            assert max(active_counts) - min(active_counts) <= 1
        assert all(len(q) == 0 for q in protocol._queues.values())
        assert served == {f"src{s}": b for s, b in backlogs.items()}


class TestDeterminism:
    def test_identical_seeds_identical_traces(self):
        """The whole stack is deterministic: same seed -> bit-identical
        delivery traces (this is what makes every benchmark in this
        repository reproducible)."""
        from repro.analysis.scenarios import continental_scenario
        from repro.analysis.workloads import CbrSource
        from repro.net.loss import GilbertElliottLoss

        def run():
            scn = continental_scenario(
                seed=802,
                loss_factory=lambda: GilbertElliottLoss(
                    mean_good=1.0, mean_bad=0.05, bad_loss=0.5
                ),
            )
            scn.overlay.client("site-LAX", 7, on_message=lambda m: None)
            tx = scn.overlay.client("site-NYC")
            CbrSource(scn.sim, tx, Address("site-LAX", 7), rate_pps=100,
                      service=ServiceSpec(link="reliable")).start()
            scn.run_for(5.0)
            return [
                (r.flow, r.seq, r.delivered_at) for r in scn.overlay.trace.records
            ]

        assert run() == run()

    def test_different_seeds_differ(self):
        from repro.analysis.scenarios import line_scenario
        from repro.net.loss import BernoulliLoss

        def run(seed):
            scn = line_scenario(seed, n_hops=1,
                                loss_factory=lambda: BernoulliLoss(0.2))
            got = []
            scn.overlay.client("h1", 7, on_message=lambda m: got.append(m.seq))
            tx = scn.overlay.client("h0")
            for __ in range(100):
                tx.send(Address("h1", 7))
            scn.run_for(3.0)
            return got

        assert run(803) != run(804)
