"""Remote manipulation, SCADA agreement, and compound flows (Sec V)."""

import pytest

from repro.analysis.scenarios import continental_scenario
from repro.analysis.workloads import CbrSource
from repro.apps.compound import (
    CDN_GROUP,
    CdnReceiver,
    TRANSCODE_GROUP,
    TranscodingFacility,
)
from repro.apps.remote import (
    ONE_WAY_BUDGET,
    ROUND_TRIP_BUDGET,
    RemoteManipulationSession,
    manipulation_service,
)
from repro.apps.scada import ScadaDeployment
from repro.core.message import Address, LINK_RELIABLE, ServiceSpec
from repro.security.crypto import Authenticator, KeyStore


class TestRemoteManipulation:
    def test_budgets_match_paper(self):
        assert ROUND_TRIP_BUDGET == pytest.approx(0.130)
        assert ONE_WAY_BUDGET == pytest.approx(0.065)

    def test_loop_closes_on_time_on_clean_network(self):
        scn = continental_scenario(seed=91)
        session = RemoteManipulationSession(
            scn.overlay, "site-NYC", "site-LAX", rate_pps=50
        ).start(duration=3.0)
        scn.run_for(4.0)
        stats = session.stats()
        assert stats.on_time_ratio > 0.99
        assert max(session.round_trip_latencies) < 0.130

    def test_service_is_graph_plus_single_strike(self):
        svc = manipulation_service()
        assert svc.routing == "graph"
        assert svc.link == "single-strike"

    def test_dissemination_graph_beats_single_path_under_loss(self):
        from repro.net.loss import GilbertElliottLoss

        def run(service, seed=92):
            scn = continental_scenario(
                seed=seed,
                loss_factory=lambda: GilbertElliottLoss(
                    mean_good=0.5, mean_bad=0.06, bad_loss=0.8
                ),
            )
            session = RemoteManipulationSession(
                scn.overlay, "site-NYC", "site-LAX", rate_pps=50, service=service
            ).start(duration=5.0)
            scn.run_for(7.0)
            return session.stats().on_time_ratio

        graph = run(manipulation_service())
        single = run(ServiceSpec(link="single-strike"))
        assert graph > single

    def test_duplicate_feedback_counted_once(self):
        scn = continental_scenario(seed=93)
        session = RemoteManipulationSession(
            scn.overlay, "site-NYC", "site-CHI", rate_pps=20
        ).start(duration=2.0)
        scn.run_for(3.0)
        stats = session.stats()
        assert stats.feedback_received <= stats.commands_sent


class TestScada:
    def _overlay(self, seed=94):
        return continental_scenario(seed=seed)

    def test_replica_count_validation(self):
        scn = self._overlay()
        with pytest.raises(ValueError):
            ScadaDeployment(scn.overlay, ["site-NYC", "site-CHI", "site-DEN"])

    def test_agreement_decides_at_all_replicas(self):
        scn = self._overlay(95)
        scada = ScadaDeployment(
            scn.overlay, ["site-NYC", "site-CHI", "site-DEN", "site-ATL"]
        )
        scn.run_for(1.0)
        pid = scada.propose("trip-breaker-7")
        scn.run_for(2.0)
        assert scada.decided_count(pid) == 4
        assert scada.decision_latency(pid) is not None

    def test_agreement_latency_within_budget_with_cheap_crypto(self):
        scn = self._overlay(96)
        keystore = KeyStore()
        auth = Authenticator(keystore, sign_delay=0.0005, verify_delay=0.00005)
        scada = ScadaDeployment(
            scn.overlay,
            ["site-NYC", "site-CHI", "site-DEN", "site-ATL"],
            auth=auth,
        )
        scn.run_for(1.0)
        pid = scada.propose("cmd")
        scn.run_for(2.0)
        latency = scada.quorum_decision_latency(pid)
        assert latency is not None
        assert latency < 0.2  # fits the Sec V-B budget at n=4

    def test_expensive_crypto_blows_the_budget_at_scale(self):
        """The Sec V-B barrier: same protocol, bigger n + slow signatures
        -> agreement alone exceeds 200 ms."""
        scn = continental_scenario(seed=97, isps=["ispA", "ispB"])
        keystore = KeyStore()
        auth = Authenticator(keystore, sign_delay=0.03, verify_delay=0.008)
        sites = [f"site-{c}" for c in
                 ("NYC", "CHI", "DEN", "ATL", "LAX", "SEA", "DAL",
                  "WAS", "MIA", "STL")]
        scada = ScadaDeployment(scn.overlay, sites, auth=auth)
        scn.run_for(1.0)
        pid = scada.propose("cmd")
        scn.run_for(5.0)
        latency = scada.quorum_decision_latency(pid)
        assert latency is not None
        assert latency > 0.2

    def test_device_load_steals_cpu(self):
        def latency_with_load(load, seed=98):
            scn = continental_scenario(seed=seed)
            auth = Authenticator(KeyStore(), sign_delay=0.002,
                                 verify_delay=0.001)
            scada = ScadaDeployment(
                scn.overlay,
                ["site-NYC", "site-CHI", "site-DEN", "site-ATL"],
                auth=auth,
            )
            for replica in scada.replicas:
                replica.add_device_load(load)
            scn.run_for(1.0)
            pid = scada.propose("cmd")
            scn.run_for(5.0)
            return scada.quorum_decision_latency(pid)

        assert latency_with_load(500.0) > latency_with_load(0.0)


class TestCompoundFlows:
    def _pipeline(self, seed=99):
        scn = continental_scenario(seed=seed)
        fac_dal = TranscodingFacility(scn.overlay, "site-DAL", 7300)
        fac_stl = TranscodingFacility(scn.overlay, "site-STL", 7301)
        cdn = CdnReceiver(scn.overlay, "site-BOS", 7400)
        scn.run_for(0.5)
        tx = scn.overlay.client("site-LAX", 7500)
        stream = CbrSource(
            scn.sim, tx, Address(TRANSCODE_GROUP, 7300), rate_pps=50,
            size=1200, service=ServiceSpec(link=LINK_RELIABLE),
        ).start()
        return scn, fac_dal, fac_stl, cdn, stream

    def test_anycast_selects_one_facility(self):
        scn, fac_dal, fac_stl, cdn, stream = self._pipeline()
        scn.run_for(3.0)
        assert (fac_dal.frames_transcoded == 0) != (fac_stl.frames_transcoded == 0)
        assert len(cdn.deliveries) > 100

    def test_end_to_end_latency_includes_transcode(self):
        scn, __, __, cdn, __ = self._pipeline(seed=100)
        scn.run_for(2.0)
        assert min(cdn.end_to_end_latencies) > 0.005  # the transcode delay

    def test_failover_to_surviving_facility(self):
        scn, fac_dal, fac_stl, cdn, stream = self._pipeline(seed=101)
        scn.run_for(2.0)
        active, passive = (
            (fac_dal, fac_stl) if fac_dal.frames_transcoded else (fac_stl, fac_dal)
        )
        active.fail(detection_delay=0.1)
        scn.run_for(4.0)
        stream.stop()
        scn.run_for(1.0)
        assert passive.frames_transcoded > 0, "anycast did not re-select"
        gaps = cdn.interruptions(expected_interval=0.02)
        assert gaps, "expected a visible interruption"
        assert max(duration for __, duration in gaps) < 1.0
