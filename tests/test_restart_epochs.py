"""Daemon-restart regressions: protocol epochs and adjacency DB sync.

Both mechanisms exist because of bugs found by the chaos test: after a
node crash + recovery, (a) its fresh protocol instances restart their
link sequence spaces — without epochs, peers discarded thousands of
frames as 'ancient duplicates'; (b) its connectivity/group databases
are stale — without adjacency-bring-up sync, it routed on pre-crash
state and formed transient forwarding loops.
"""

from repro.analysis.scenarios import continental_scenario
from repro.analysis.workloads import CbrSource
from repro.core.message import Address, LINK_RELIABLE, ServiceSpec
from tests.conftest import make_triangle_overlay


def test_reliable_flow_resumes_promptly_after_midpath_restart():
    """The original symptom: a reliable stream through a restarted node
    stalled for thousands of packets. With epochs it resumes within
    ~a second of the links coming back."""
    scn = continental_scenario(seed=1501)
    overlay = scn.overlay
    got = []
    overlay.client("site-SEA", 7, on_message=lambda m: got.append((m.seq, scn.sim.now)))
    tx = overlay.client("site-WAS")
    source = CbrSource(scn.sim, tx, Address("site-SEA", 7), rate_pps=50,
                       service=ServiceSpec(link=LINK_RELIABLE)).start()
    scn.run_for(3.0)
    victim = overlay.overlay_path("site-WAS", "site-SEA")[1]
    overlay.crash(victim)
    scn.run_for(4.0)
    overlay.recover(victim)
    recover_at = scn.sim.now
    scn.run_for(10.0)
    source.stop()
    scn.run_for(1.0)
    # Traffic flows continuously well before and after the recovery
    # (the overlay rerouted during the crash; the recovered node's
    # fresh protocol state must not poison anything).
    after = [t for __, t in got if t > recover_at + 2.0]
    assert len(after) > 50 * 7 * 0.9
    seqs = [s for s, __ in got]
    assert len(seqs) == len(set(seqs)), "restart caused duplicate delivery"


def test_restarted_node_forwards_without_duplicate_confusion():
    """Route a stream THROUGH the restarted node and check its fresh
    sender seq space is accepted by the downstream peer."""
    scn = make_triangle_overlay(seed=1502)
    overlay = scn.overlay
    # Pin the route hx -> hy -> hz.
    scn.internet.isps["tri"].fail_link("x", "z")
    scn.run_for(8.0)
    got = []
    overlay.client("hz", 7, on_message=lambda m: got.append(m.seq))
    tx = overlay.client("hx")
    svc = ServiceSpec(link=LINK_RELIABLE)
    for __ in range(50):
        tx.send(Address("hz", 7), service=svc)
    scn.run_for(3.0)
    first_batch = len(got)
    assert first_batch == 50
    overlay.crash("hy")
    scn.run_for(2.0)
    overlay.recover("hy")
    scn.run_for(3.0)  # links re-up, DBs sync
    for __ in range(50):
        tx.send(Address("hz", 7), service=svc)
    scn.run_for(5.0)
    assert sorted(set(got)) == list(range(100))
    assert len(got) == 100  # no duplicates either
    # The old-instance frames never caused state resets beyond the one
    # genuine restart per (neighbor, protocol).
    assert scn.overlay.counters.get("protocol-peer-restart") <= 8


def test_recovered_node_syncs_databases_from_neighbors():
    """Adjacency bring-up: a recovered node learns current topology and
    group state within ~1 RTT of its links coming up, not after the
    next periodic refresh."""
    scn = continental_scenario(seed=1503)
    overlay = scn.overlay
    rx = overlay.client("site-MIA", 7, on_message=lambda m: None)
    rx.join("mcast:sync-test")
    scn.run_for(1.0)
    overlay.crash("site-DEN")
    scn.run_for(2.0)
    # While DEN is dark, the world changes: a fiber dies and group
    # membership changes.
    scn.internet.fail_fiber("ispA", "NYC", "CHI")
    rx2 = overlay.client("site-BOS", 7, on_message=lambda m: None)
    rx2.join("mcast:sync-test")
    scn.run_for(3.0)
    overlay.recover("site-DEN")
    # Sync should land as soon as links re-up (~0.3 s), far sooner than
    # the 5 s periodic refresh.
    scn.run_for(1.0)
    den = overlay.nodes["site-DEN"]
    reference = overlay.nodes["site-DAL"]
    assert den.group_db.members("mcast:sync-test") == (
        reference.group_db.members("mcast:sync-test")
    )
    # Structural agreement (link costs keep settling for a few seconds
    # after recovery as loss EWMAs decay, so compare edges, not floats).
    den_edges = {u: set(nbrs) for u, nbrs in den.routing.adjacency().items()}
    ref_edges = {u: set(nbrs) for u, nbrs in reference.routing.adjacency().items()}
    assert den_edges == ref_edges
    # (The NYC-CHI overlay link itself survives the fiber cut by
    # switching carriers — what matters is that DEN's view agrees.)


def test_no_routing_loops_after_recovery():
    scn = continental_scenario(seed=1504)
    overlay = scn.overlay
    streams = []
    for dst in ("site-SEA", "site-MIA", "site-LAX"):
        overlay.client(dst, 7, on_message=lambda m: None)
        tx = overlay.client("site-NYC")
        streams.append(CbrSource(scn.sim, tx, Address(dst, 7), rate_pps=50).start())
    scn.run_for(2.0)
    overlay.crash("site-CHI")
    scn.run_for(5.0)
    overlay.recover("site-CHI")
    scn.run_for(10.0)
    for stream in streams:
        stream.stop()
    scn.run_for(1.0)
    assert overlay.counters.get("overlay-ttl-exceeded") == 0
