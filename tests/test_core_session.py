"""Session interface: ports, groups, and egress reorder buffers."""

import pytest

from repro.core.message import Address, LINK_RELIABLE, ServiceSpec
from tests.conftest import make_triangle_overlay, make_two_node_line


def test_duplicate_port_rejected():
    scn = make_triangle_overlay()
    scn.overlay.client("hx", 5)
    with pytest.raises(ValueError):
        scn.overlay.client("hx", 5)


def test_auto_port_assignment():
    scn = make_triangle_overlay()
    a = scn.overlay.client("hx")
    b = scn.overlay.client("hx")
    assert a.port != b.port


def test_close_releases_port():
    scn = make_triangle_overlay()
    client = scn.overlay.client("hx", 5)
    client.close()
    scn.overlay.client("hx", 5)  # no error


def test_close_withdraws_group_interest():
    scn = make_triangle_overlay()
    rx = scn.overlay.client("hy", 5, on_message=lambda m: None)
    rx.join("mcast:g")
    scn.run_for(1.0)
    node_x = scn.overlay.nodes["hx"]
    assert node_x.group_db.members("mcast:g") == ["hy"]
    rx.close()
    scn.run_for(1.0)
    assert node_x.group_db.members("mcast:g") == []


def test_two_clients_same_group_same_node():
    scn = make_triangle_overlay()
    got1, got2 = [], []
    scn.overlay.client("hy", 5, on_message=got1.append).join("mcast:g")
    scn.overlay.client("hy", 6, on_message=got2.append).join("mcast:g")
    scn.run_for(1.0)
    scn.overlay.client("hx").send(Address("mcast:g", 5))
    scn.run_for(1.0)
    assert len(got1) == 1 and len(got2) == 1


class TestReorderBuffer:
    def _ordered_flow(self, scn, deadline=None, count=50, loss_free_run=10.0):
        got = []
        scn.overlay.client("h1", 7, on_message=lambda m: got.append(m.seq))
        tx = scn.overlay.client("h0")
        svc = ServiceSpec(link=LINK_RELIABLE, ordered=True, deadline=deadline)
        for __ in range(count):
            tx.send(Address("h1", 7), service=svc)
        scn.run_for(loss_free_run)
        return got

    def test_in_order_delivery_over_lossy_link(self):
        scn = make_two_node_line(seed=21, loss_rate=0.15)
        got = self._ordered_flow(scn)
        assert got == list(range(50))

    def test_unordered_flows_may_reorder_but_all_arrive(self):
        scn = make_two_node_line(seed=22, loss_rate=0.15)
        got = []
        scn.overlay.client("h1", 7, on_message=lambda m: got.append(m.seq))
        tx = scn.overlay.client("h0")
        svc = ServiceSpec(link=LINK_RELIABLE, ordered=False)
        for __ in range(50):
            tx.send(Address("h1", 7), service=svc)
        scn.run_for(10.0)
        assert sorted(got) == list(range(50))

    def test_deadline_skips_unrecoverable_gap(self):
        """With best-effort under loss, ordered+deadline delivery must
        advance past holes instead of stalling forever (Sec IV-A)."""
        scn = make_two_node_line(seed=23, loss_rate=0.2)
        got = []
        scn.overlay.client("h1", 7, on_message=lambda m: got.append(m.seq))
        tx = scn.overlay.client("h0")
        svc = ServiceSpec(ordered=True, deadline=0.1)  # best-effort link
        for __ in range(200):
            tx.send(Address("h1", 7), service=svc)
        scn.run_for(10.0)
        assert len(got) > 100  # most made it despite 20% loss
        assert got == sorted(got)  # strictly in order
        assert scn.overlay.counters.get("reorder-skipped") > 0

    def test_late_recovered_packet_discarded(self):
        scn = make_two_node_line(seed=24, loss_rate=0.2)
        got = []
        scn.overlay.client("h1", 7, on_message=lambda m: got.append(m.seq))
        tx = scn.overlay.client("h0")
        # Reliable link recovers everything, but a 30 ms deadline over a
        # 10 ms link means recovered packets often arrive after the
        # buffer moved on: they must be discarded, not delivered.
        svc = ServiceSpec(link=LINK_RELIABLE, ordered=True, deadline=0.03)
        for __ in range(300):
            tx.send(Address("h1", 7), service=svc)
        scn.run_for(15.0)
        assert got == sorted(got)
        assert scn.overlay.counters.get("late-discarded") > 0

    def test_mid_stream_group_join_starts_at_first_seen_seq(self):
        scn = make_two_node_line(seed=25)
        tx = scn.overlay.client("h0")
        svc = ServiceSpec(link=LINK_RELIABLE, ordered=True)
        early = scn.overlay.client("h1", 6, on_message=lambda m: None)
        early.join("mcast:g")
        scn.run_for(1.0)
        for __ in range(10):
            tx.send(Address("mcast:g", 6), service=svc)
        scn.run_for(2.0)
        got = []
        late = scn.overlay.client("h1", 7, on_message=lambda m: got.append(m.seq))
        late.join("mcast:g")
        scn.run_for(1.0)
        for __ in range(10):
            tx.send(Address("mcast:g", 6), service=svc)
        scn.run_for(2.0)
        # The late joiner's in-order window starts where it tuned in.
        assert got == list(range(10, 20))

    def test_unicast_first_packet_recovery_is_not_discarded(self):
        """A unicast ordered flow starts at seq 0 even if the first
        packet needs recovery — it must not be treated as a mid-stream
        join and discarded."""
        scn = make_two_node_line(seed=26, loss_rate=0.3)
        got = []
        scn.overlay.client("h1", 7, on_message=lambda m: got.append(m.seq))
        tx = scn.overlay.client("h0")
        svc = ServiceSpec(link=LINK_RELIABLE, ordered=True)
        for __ in range(30):
            tx.send(Address("h1", 7), service=svc)
        scn.run_for(10.0)
        assert got == list(range(30))
