"""Unit tests for the discrete-event scheduler."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.events import SimulationError, Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(0.3, fired.append, "c")
    sim.schedule(0.1, fired.append, "a")
    sim.schedule(0.2, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_same_time_events_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for name in "abcde":
        sim.schedule(1.0, fired.append, name)
    sim.run()
    assert fired == list("abcde")


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(2.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.5]


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(5.0, fired.append, "late")
    sim.run(until=2.0)
    assert fired == ["early"]
    assert sim.now == 2.0


def test_run_until_advances_clock_even_with_empty_queue():
    sim = Simulator()
    sim.run(until=7.0)
    assert sim.now == 7.0


def test_late_events_survive_run_until():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, "late")
    sim.run(until=2.0)
    sim.run(until=10.0)
    assert fired == ["late"]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []
    assert event.cancelled


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()


def test_events_scheduled_during_run_fire():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(0.1, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]


def test_schedule_in_past_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_before_now_raises():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_zero_delay_event_fires_at_current_time():
    sim = Simulator()
    times = []
    sim.schedule(1.0, lambda: sim.schedule(0.0, lambda: times.append(sim.now)))
    sim.run()
    assert times == [1.0]


def test_max_events_limits_processing():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i), fired.append, i)
    processed = sim.run(max_events=4)
    assert processed == 4
    assert fired == [0, 1, 2, 3]


def test_step_processes_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    assert sim.step()
    assert fired == ["a"]
    assert sim.step()
    assert not sim.step()


def test_step_skips_cancelled_events():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    event.cancel()
    assert sim.step()
    assert fired == ["b"]


def test_events_processed_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_pending_events_excludes_cancelled():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    event = sim.schedule(2.0, lambda: None)
    event.cancel()
    assert sim.pending_events == 1


def test_clear_drops_pending_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "x")
    sim.clear()
    sim.run()
    assert fired == []


def test_run_is_not_reentrant():
    sim = Simulator()
    failures = []

    def reenter():
        try:
            sim.run()
        except SimulationError:
            failures.append(True)

    sim.schedule(0.0, reenter)
    sim.run()
    assert failures == [True]


def test_callback_args_are_passed():
    sim = Simulator()
    seen = []
    sim.schedule(0.0, lambda a, b: seen.append((a, b)), 1, "two")
    sim.run()
    assert seen == [(1, "two")]


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
def test_property_events_fire_in_nondecreasing_time(delays):
    sim = Simulator()
    times = []
    for d in delays:
        sim.schedule(d, lambda: times.append(sim.now))
    sim.run()
    assert times == sorted(times)
    assert len(times) == len(delays)


@given(
    st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=100.0), st.booleans()),
        min_size=1,
        max_size=40,
    )
)
def test_property_cancelled_events_never_fire(items):
    sim = Simulator()
    fired = []
    for idx, (delay, cancel) in enumerate(items):
        event = sim.schedule(delay, fired.append, idx)
        if cancel:
            event.cancel()
    sim.run()
    expected = {idx for idx, (__, cancel) in enumerate(items) if not cancel}
    assert set(fired) == expected
