"""Hypothesis stateful testing: random interleavings of failures,
repairs, crashes, recoveries, and traffic must never corrupt the
overlay — and once everything heals, full service must return."""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule
import hypothesis.strategies as st

from repro.analysis.scenarios import triangle_scenario
from repro.core.message import Address

NODES = ["hx", "hy", "hz"]
FIBERS = [("x", "y"), ("y", "z"), ("x", "z")]


class OverlayFaultMachine(RuleBasedStateMachine):
    """Drives one triangle overlay through arbitrary fault schedules."""

    def __init__(self):
        super().__init__()
        self.scn = triangle_scenario(seed=4001)
        self.overlay = self.scn.overlay
        self.crashed: set[str] = set()
        self.failed_fibers: set[tuple[str, str]] = set()
        self.received: list[int] = []
        self.sent = 0
        self.rx = self.overlay.client("hz", 7,
                                      on_message=lambda m: self.received.append(m.seq))
        self.tx = self.overlay.client("hx", 8)

    # ------------------------------------------------------------ rules

    @rule(node=st.sampled_from(["hy"]))  # keep the endpoints alive
    def crash_node(self, node):
        if node not in self.crashed:
            self.overlay.crash(node)
            self.crashed.add(node)
        self.scn.run_for(0.3)

    @rule(node=st.sampled_from(["hy"]))
    def recover_node(self, node):
        if node in self.crashed:
            self.overlay.recover(node)
            self.crashed.discard(node)
        self.scn.run_for(0.3)

    @rule(fiber=st.sampled_from(FIBERS))
    def fail_fiber(self, fiber):
        if fiber not in self.failed_fibers and len(self.failed_fibers) < 2:
            self.scn.internet.fail_fiber("tri", *fiber)
            self.failed_fibers.add(fiber)
        self.scn.run_for(0.3)

    @rule(fiber=st.sampled_from(FIBERS))
    def repair_fiber(self, fiber):
        if fiber in self.failed_fibers:
            self.scn.internet.repair_fiber("tri", *fiber)
            self.failed_fibers.discard(fiber)
        self.scn.run_for(0.3)

    @rule(count=st.integers(min_value=1, max_value=5))
    def send_traffic(self, count):
        for __ in range(count):
            if self.tx.send(Address("hz", 7)):
                self.sent += 1
        self.scn.run_for(0.2)

    @rule()
    def let_time_pass(self):
        self.scn.run_for(1.0)

    # -------------------------------------------------------- invariants

    @invariant()
    def no_duplicate_deliveries(self):
        assert len(self.received) == len(set(self.received))

    @invariant()
    def counters_show_no_corruption(self):
        assert self.overlay.counters.get("unknown-control") == 0

    def teardown(self):
        # Heal everything, settle past the underlay convergence delay,
        # and demand full service back.
        for fiber in list(self.failed_fibers):
            self.scn.internet.repair_fiber("tri", *fiber)
        for node in list(self.crashed):
            self.overlay.recover(node)
        convergence = self.scn.internet.isps["tri"].convergence_delay
        self.scn.run_for(convergence + 5.0)
        assert self.overlay.converged()
        before = len(self.received)
        for __ in range(5):
            assert self.tx.send(Address("hz", 7))
            self.scn.run_for(0.1)
        self.scn.run_for(1.0)
        assert len(self.received) == before + 5


OverlayFaultMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=12, deadline=None
)
TestOverlayFaults = OverlayFaultMachine.TestCase
